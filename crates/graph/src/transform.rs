//! Small structural transformation helpers shared by the higher layers.

use crate::{ActorId, SdfGraph, SdfGraphBuilder, Time};

impl SdfGraph {
    /// Reopens the graph as a builder containing all its actors and
    /// channels, for transformations that extend a graph (ids are
    /// preserved: actor `i` of the graph is actor `i` of the builder).
    ///
    /// # Example
    ///
    /// ```
    /// use sdfr_graph::SdfGraph;
    ///
    /// let mut b = SdfGraph::builder("g");
    /// let x = b.actor("x", 1);
    /// b.channel(x, x, 1, 1, 1)?;
    /// let g = b.build()?;
    ///
    /// let mut b = g.to_builder();
    /// let y = b.actor("y", 2);
    /// b.channel(x, y, 1, 1, 0)?;
    /// let extended = b.build()?;
    /// assert_eq!(extended.num_actors(), 2);
    /// assert_eq!(extended.actor(x).name(), "x");
    /// # Ok::<(), sdfr_graph::SdfError>(())
    /// ```
    pub fn to_builder(&self) -> SdfGraphBuilder {
        let mut b = SdfGraph::builder(self.name.clone());
        for a in &self.actors {
            b.actor(a.name.clone(), a.execution_time);
        }
        for c in &self.channels {
            b.channel(
                c.source,
                c.target,
                c.production,
                c.consumption,
                c.initial_tokens,
            )
            .expect("copying a valid channel");
        }
        b
    }

    /// A copy of the graph with per-actor execution times replaced by
    /// `time(actor, current)`; structure is unchanged.
    ///
    /// The new times must be non-negative (checked by the builder).
    ///
    /// # Panics
    ///
    /// Panics if a produced time is negative.
    pub fn with_execution_times(&self, mut time: impl FnMut(ActorId, Time) -> Time) -> SdfGraph {
        let mut b = SdfGraph::builder(self.name.clone());
        for (id, a) in self.actors() {
            b.actor(a.name().to_string(), time(id, a.execution_time()));
        }
        for c in &self.channels {
            b.channel(
                c.source,
                c.target,
                c.production,
                c.consumption,
                c.initial_tokens,
            )
            .expect("copying a valid channel");
        }
        b.build().expect("structure unchanged, times validated")
    }

    /// A copy of the graph with every actor gaining a self-loop of
    /// `bound` tokens (rates 1), limiting its auto-concurrency to `bound`
    /// simultaneous firings — the standard modelling of bounded actor
    /// re-entrance. Actors that already have a self-loop keep it (the
    /// tighter constraint wins naturally).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (that would deadlock every actor).
    pub fn with_auto_concurrency(&self, bound: u64) -> SdfGraph {
        assert!(bound >= 1, "an auto-concurrency bound of 0 deadlocks");
        let mut b = self.to_builder();
        for a in self.actor_ids() {
            b.channel(a, a, 1, 1, bound)
                .expect("self-loop on an existing actor");
        }
        b.build().expect("structure extension is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdfGraph {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 2, 3, 1).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn to_builder_round_trips() {
        let g = sample();
        assert_eq!(g.to_builder().build().unwrap(), g);
    }

    #[test]
    fn with_execution_times_scales() {
        let g = sample();
        let doubled = g.with_execution_times(|_, t| t * 2);
        let x = doubled.actor_by_name("x").unwrap();
        assert_eq!(doubled.actor(x).execution_time(), 4);
        assert_eq!(doubled.num_channels(), g.num_channels());
    }

    #[test]
    #[should_panic]
    fn with_negative_time_panics() {
        let g = sample();
        let _ = g.with_execution_times(|_, _| -1);
    }

    #[test]
    fn auto_concurrency_adds_self_loops() {
        let g = sample();
        let bounded = g.with_auto_concurrency(2);
        assert_eq!(bounded.num_channels(), g.num_channels() + g.num_actors());
        let x = bounded.actor_by_name("x").unwrap();
        assert!(bounded.outgoing(x).iter().any(
            |&c| bounded.channel(c).is_self_loop() && bounded.channel(c).initial_tokens() == 2
        ));
    }

    #[test]
    #[should_panic(expected = "deadlocks")]
    fn zero_bound_rejected() {
        let _ = sample().with_auto_concurrency(0);
    }
}

//! Timed synchronous dataflow (SDF) graph model.
//!
//! An SDF graph (Lee & Messerschmitt, 1987) consists of *actors* that fire
//! repeatedly, consuming and producing fixed numbers of *tokens* on FIFO
//! *channels*. A timed SDF graph additionally assigns every actor an integer
//! execution time (paper, Defs. 1–2). This crate provides:
//!
//! - [`SdfGraph`] and [`SdfGraphBuilder`] — the graph model and its validated
//!   construction,
//! - [`repetition`] — consistency checking and repetition vectors,
//! - [`schedule`] — periodic admissible sequential schedules (PASS),
//! - [`liveness`] — deadlock detection,
//! - [`execution`] — an event-driven self-timed execution simulator,
//! - [`budget`] — resource budgets (firings, size, deadline, cancellation)
//!   that bound every iteration-executing loop,
//! - [`dot`] — Graphviz export.
//!
//! # Example
//!
//! ```
//! use sdfr_graph::SdfGraph;
//! use sdfr_graph::repetition::repetition_vector;
//!
//! // The classic up/down-sampler pair: a produces 2, b consumes 3.
//! let mut b = SdfGraph::builder("example");
//! let a = b.actor("a", 1);
//! let c = b.actor("b", 2);
//! b.channel(a, c, 2, 3, 0)?;
//! let g = b.build()?;
//!
//! let gamma = repetition_vector(&g)?;
//! assert_eq!(gamma[a], 3);
//! assert_eq!(gamma[c], 2);
//! # Ok::<(), sdfr_graph::SdfError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod graph;
mod transform;

pub mod budget;
pub mod dot;
pub mod execution;
pub mod liveness;
pub mod repetition;
pub mod schedule;

pub use builder::SdfGraphBuilder;
pub use error::SdfError;
pub use graph::{Actor, ActorId, Channel, ChannelId, SdfGraph};

/// Integer time, re-exported from [`sdfr_maxplus`].
pub use sdfr_maxplus::Time;

//! Event-driven self-timed execution of timed SDF graphs.
//!
//! Under *self-timed execution* (paper, Sec. 3) every actor fires as soon as
//! all its input tokens are available; firings of the same actor may overlap
//! (auto-concurrency) unless the graph restricts them, e.g. with a self-loop
//! carrying one token. Tokens are consumed when a firing starts and produced
//! when it ends, `T(a)` time units later.
//!
//! The simulator executes a bounded number of graph iterations. Bounding by
//! iterations keeps the simulation finite even for graphs with source actors
//! (which self-timed semantics otherwise lets fire unboundedly often at time
//! 0): a firing beyond `iterations · γ(a)` can never influence the completion
//! of the requested iterations, because token consumption in SDF is monotone.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::budget::Budget;
use crate::repetition::repetition_vector;
use crate::{ActorId, SdfError, SdfGraph, Time};

/// Options controlling a self-timed simulation.
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// The number of complete graph iterations to execute (must be ≥ 1).
    pub iterations: u64,
    /// Record the `(start, end)` times of every firing of every actor.
    ///
    /// Off by default since traces of long simulations are large.
    pub record_firings: bool,
    /// Periodic release constraints: `(actor, period)` forces the `n`-th
    /// firing of the actor to start no earlier than `n · period`. Used to
    /// model periodic sources (e.g. a camera or a network interface) whose
    /// arrival rate, not data dependencies, paces the graph.
    pub releases: Vec<(ActorId, Time)>,
    /// Resource budget; unlimited by default. The simulation charges one
    /// unit per started firing and fails with [`SdfError::Exhausted`] when
    /// the budget runs out.
    pub budget: Budget,
}

impl SimulationOptions {
    /// Simulates the given number of iterations without recording firings.
    pub fn iterations(iterations: u64) -> Self {
        SimulationOptions {
            iterations,
            record_firings: false,
            releases: Vec::new(),
            budget: Budget::unlimited(),
        }
    }

    /// Bounds the simulation by the given resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables recording of individual firing times.
    pub fn with_firings(mut self) -> Self {
        self.record_firings = true;
        self
    }

    /// Adds a periodic release constraint (see
    /// [`releases`](SimulationOptions::releases)).
    ///
    /// # Panics
    ///
    /// Panics if `period < 0`.
    pub fn with_periodic_release(mut self, actor: ActorId, period: Time) -> Self {
        assert!(period >= 0, "release periods must be non-negative");
        self.releases.push((actor, period));
        self
    }
}

/// The result of a self-timed simulation.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Completed firings per actor (indexed by [`ActorId::index`]).
    pub fire_counts: Vec<u64>,
    /// Time at which the last requested firing completed.
    pub makespan: Time,
    /// `iteration_completions[k]` is the earliest time by which every actor
    /// `a` has completed `(k+1) · γ(a)` firings.
    pub iteration_completions: Vec<Time>,
    /// Maximum simultaneous token count observed per channel (including the
    /// initial tokens), a self-timed buffer-occupancy bound.
    pub channel_peak_tokens: Vec<u64>,
    /// Maximum *reserved* occupancy per channel: stored tokens plus the
    /// production of in-flight source firings plus the consumption claims of
    /// in-flight target firings. This is exactly the FIFO capacity at which
    /// a bounded implementation (slots reserved for the whole firing, freed
    /// at the consumer's completion) can follow this self-timed schedule.
    pub channel_peak_reserved: Vec<u64>,
    /// Per-actor `(start, end)` firing times, present when
    /// [`SimulationOptions::record_firings`] was set.
    pub firings: Option<Vec<Vec<(Time, Time)>>>,
}

impl Trace {
    /// The completion time of the `k`-th iteration (0-based).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k + 1` iterations were simulated.
    pub fn iteration_completion(&self, k: usize) -> Time {
        self.iteration_completions[k]
    }
}

/// Runs a self-timed simulation of `opts.iterations` complete iterations.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if `g` has no repetition vector,
/// - [`SdfError::Deadlock`] if execution stalls before completing,
/// - [`SdfError::Overflow`] on token-count overflow,
/// - [`SdfError::Exhausted`] if [`SimulationOptions::budget`] runs out.
///
/// # Panics
///
/// Panics if `opts.iterations == 0`.
///
/// # Example
///
/// ```
/// use sdfr_graph::execution::{simulate, SimulationOptions};
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("cycle");
/// let x = b.actor("x", 2);
/// let y = b.actor("y", 3);
/// b.channel(x, y, 1, 1, 0)?;
/// b.channel(y, x, 1, 1, 1)?;
/// let g = b.build()?;
///
/// let trace = simulate(&g, &SimulationOptions::iterations(4))?;
/// // One iteration takes T(x) + T(y) = 5 time units on the critical cycle.
/// assert_eq!(trace.iteration_completions, vec![5, 10, 15, 20]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(g: &SdfGraph, opts: &SimulationOptions) -> Result<Trace, SdfError> {
    assert!(opts.iterations >= 1, "at least one iteration is required");
    let gamma = repetition_vector(g)?;
    let n = g.num_actors();
    let caps: Vec<u64> = (0..n)
        .map(|i| {
            gamma
                .get(ActorId::from_index(i))
                .checked_mul(opts.iterations)
                .ok_or(SdfError::Overflow {
                    what: "firing cap (iterations * repetition vector)",
                })
        })
        .collect::<Result<_, _>>()?;
    let needed =
        caps.iter()
            .try_fold(0u64, |s, &c| s.checked_add(c))
            .ok_or(SdfError::Overflow {
                what: "total firing count (iterations * iteration length)",
            })?;
    let mut meter = opts.budget.meter();
    meter.precheck(needed)?;

    let mut tokens: Vec<u64> = g.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut peak = tokens.clone();
    let mut peak_reserved = tokens.clone();
    let mut started = vec![0u64; n];
    let mut completed = vec![0u64; n];
    let mut inflight = vec![0u64; n];
    let mut firings: Option<Vec<Vec<(Time, Time)>>> =
        opts.record_firings.then(|| vec![Vec::new(); n]);

    // Pending completions: (end_time, actor, count).
    let mut heap: BinaryHeap<Reverse<(Time, usize, u64)>> = BinaryHeap::new();
    let mut time: Time = 0;
    let mut iteration_completions = Vec::with_capacity(opts.iterations as usize);
    let mut next_iteration: u64 = 0;
    let mut done: u64 = 0;

    loop {
        meter.poll()?;
        // Start every enabled firing at the current time. Repeat until a
        // fixpoint: zero-duration firings can enable further starts, but
        // those complete via the heap in the same time step below.
        let mut any_start = true;
        while any_start {
            any_start = false;
            for a in g.actor_ids() {
                let i = a.index();
                let rem = caps[i] - started[i];
                if rem == 0 {
                    continue;
                }
                // Concurrent starts consume tokens immediately, so even a
                // self-loop bounds the batch by available tokens.
                let mut batch = rem;
                for &(ra, period) in &opts.releases {
                    if ra == a && period > 0 {
                        // Releases at 0, period, 2·period, …: at `time`,
                        // firings 0 ..= time/period are released.
                        let released = (time / period) as u64 + 1;
                        batch = batch.min(released.saturating_sub(started[i]));
                    }
                }
                if batch == 0 {
                    continue;
                }
                for &cid in g.incoming(a) {
                    let ch = g.channel(cid);
                    batch = batch.min(tokens[cid.index()] / ch.consumption());
                    if batch == 0 {
                        break;
                    }
                }
                if batch == 0 {
                    continue;
                }
                for &cid in g.incoming(a) {
                    let ch = g.channel(cid);
                    tokens[cid.index()] -= batch * ch.consumption();
                }
                meter.spend(batch)?;
                started[i] += batch;
                inflight[i] += batch;
                let end =
                    time.checked_add(g.actor(a).execution_time())
                        .ok_or(SdfError::Overflow {
                            what: "simulation time",
                        })?;
                heap.push(Reverse((end, i, batch)));
                if let Some(f) = firings.as_mut() {
                    for _ in 0..batch {
                        f[i].push((time, end));
                    }
                }
                any_start = true;
            }
        }

        // Reserved occupancy is maximal right after a burst of starts.
        for (cid, c) in g.channels() {
            let reserved = tokens[cid.index()]
                + c.production() * inflight[c.source().index()]
                + c.consumption() * inflight[c.target().index()];
            let slot = &mut peak_reserved[cid.index()];
            *slot = (*slot).max(reserved);
        }

        // Advance to the next completion or the next release instant that
        // could unblock a release-capped actor.
        let mut t_next: Option<Time> = heap.peek().map(|&Reverse((t, _, _))| t);
        for &(ra, period) in &opts.releases {
            let i = ra.index();
            if period > 0 && started[i] < caps[i] {
                let next_release = started[i] as Time * period;
                if next_release > time {
                    t_next = Some(match t_next {
                        Some(t) => t.min(next_release),
                        None => next_release,
                    });
                }
            }
        }
        let Some(t_next) = t_next else {
            // Nothing in flight, nothing startable, no pending release.
            return Err(SdfError::Deadlock {
                fired: done,
                needed,
            });
        };
        time = t_next;
        while let Some(&Reverse((t, i, count))) = heap.peek() {
            if t != time {
                break;
            }
            heap.pop();
            completed[i] += count;
            inflight[i] -= count;
            done += count;
            let a = ActorId::from_index(i);
            for &cid in g.outgoing(a) {
                let ch = g.channel(cid);
                let idx = cid.index();
                tokens[idx] =
                    tokens[idx]
                        .checked_add(count * ch.production())
                        .ok_or(SdfError::Overflow {
                            what: "token count during simulation",
                        })?;
                peak[idx] = peak[idx].max(tokens[idx]);
            }
        }

        // Record any iterations that completed by now.
        while next_iteration < opts.iterations
            && (0..n)
                .all(|i| completed[i] >= (next_iteration + 1) * gamma.get(ActorId::from_index(i)))
        {
            iteration_completions.push(time);
            next_iteration += 1;
        }

        if next_iteration == opts.iterations && (0..n).all(|i| completed[i] == caps[i]) {
            return Ok(Trace {
                fire_counts: completed,
                makespan: time,
                iteration_completions,
                channel_peak_tokens: peak,
                channel_peak_reserved: peak_reserved,
                firings,
            });
        }
    }
}

/// Convenience wrapper for [`simulate`] without firing recording.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_iterations(g: &SdfGraph, iterations: u64) -> Result<Trace, SdfError> {
    simulate(g, &SimulationOptions::iterations(iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(tx: Time, ty: Time, tokens: u64) -> SdfGraph {
        let mut b = SdfGraph::builder("cycle");
        let x = b.actor("x", tx);
        let y = b.actor("y", ty);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, tokens).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_token_cycle_period() {
        let g = cycle(2, 3, 1);
        let t = simulate_iterations(&g, 5).unwrap();
        assert_eq!(t.iteration_completions, vec![5, 10, 15, 20, 25]);
        assert_eq!(t.fire_counts, vec![5, 5]);
        assert_eq!(t.makespan, 25);
    }

    #[test]
    fn two_token_cycle_pipelines() {
        // With 2 tokens the cycle mean is (2+3)/2; over k iterations the
        // completion times grow by 5 every 2 iterations.
        let g = cycle(2, 3, 2);
        let t = simulate_iterations(&g, 6).unwrap();
        let d1 = t.iteration_completions[5] - t.iteration_completions[3];
        let d2 = t.iteration_completions[3] - t.iteration_completions[1];
        assert_eq!(d1, 5);
        assert_eq!(d2, 5);
    }

    #[test]
    fn deadlock_reported() {
        let g = cycle(1, 1, 0);
        assert!(matches!(
            simulate_iterations(&g, 1),
            Err(SdfError::Deadlock { fired: 0, .. })
        ));
    }

    #[test]
    fn auto_concurrency_without_self_loop() {
        // Source -> sink with no feedback: both firings of the source can
        // run concurrently, so 1 iteration completes after max(T) not sum.
        let mut b = SdfGraph::builder("par");
        let s = b.actor("s", 4);
        let t = b.actor("t", 1);
        b.channel(s, t, 1, 2, 0).unwrap();
        let g = b.build().unwrap();
        let trace = simulate_iterations(&g, 1).unwrap();
        // Two concurrent firings of s end at 4; t ends at 5.
        assert_eq!(trace.makespan, 5);
        assert_eq!(trace.fire_counts, vec![2, 1]);
    }

    #[test]
    fn self_loop_serializes_firings() {
        let mut b = SdfGraph::builder("ser");
        let s = b.actor("s", 4);
        let t = b.actor("t", 1);
        b.channel(s, t, 1, 2, 0).unwrap();
        b.channel(s, s, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let trace = simulate_iterations(&g, 1).unwrap();
        // Firings of s at [0,4] and [4,8]; t at [8,9].
        assert_eq!(trace.makespan, 9);
    }

    #[test]
    fn recorded_firings_match_times() {
        let mut b = SdfGraph::builder("rec");
        let s = b.actor("s", 4);
        let t = b.actor("t", 1);
        b.channel(s, t, 1, 2, 0).unwrap();
        b.channel(s, s, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let trace = simulate(&g, &SimulationOptions::iterations(1).with_firings()).unwrap();
        let f = trace.firings.unwrap();
        assert_eq!(f[0], vec![(0, 4), (4, 8)]);
        assert_eq!(f[1], vec![(8, 9)]);
    }

    #[test]
    fn peak_tokens_accounts_for_bursts() {
        // Source fires twice concurrently producing 3 tokens each; the sink
        // consumes 6 at once: peak on the channel is 6.
        let mut b = SdfGraph::builder("burst");
        let s = b.actor("s", 1);
        let t = b.actor("t", 1);
        b.channel(s, t, 3, 6, 0).unwrap();
        let g = b.build().unwrap();
        let trace = simulate_iterations(&g, 1).unwrap();
        assert_eq!(trace.channel_peak_tokens, vec![6]);
    }

    #[test]
    fn zero_time_actors_complete_instantly() {
        let mut b = SdfGraph::builder("zero");
        let x = b.actor("x", 0);
        let y = b.actor("y", 0);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let trace = simulate_iterations(&g, 3).unwrap();
        assert_eq!(trace.makespan, 0);
        assert_eq!(trace.iteration_completions, vec![0, 0, 0]);
    }

    #[test]
    fn multirate_iteration_counting() {
        // γ = (3, 2) over rates (2, 3); check fire counts scale with
        // iterations.
        let mut b = SdfGraph::builder("mr");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        let g = b.build().unwrap();
        let trace = simulate_iterations(&g, 4).unwrap();
        assert_eq!(trace.fire_counts, vec![12, 8]);
        assert_eq!(trace.iteration_completions.len(), 4);
    }

    #[test]
    fn inconsistent_graph_errors() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 2, 3).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            simulate_iterations(&g, 1),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let g = cycle(1, 1, 1);
        let _ = simulate_iterations(&g, 0);
    }

    #[test]
    fn trace_accessor() {
        let g = cycle(2, 3, 1);
        let t = simulate_iterations(&g, 2).unwrap();
        assert_eq!(t.iteration_completion(0), 5);
        assert_eq!(t.iteration_completion(1), 10);
    }
}

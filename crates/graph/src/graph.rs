//! The core timed SDF graph data structure.

use std::fmt;

use crate::Time;

/// Identifies an actor within one [`SdfGraph`].
///
/// Actor ids are dense indices handed out by [`SdfGraphBuilder::actor`] in
/// insertion order; they are only meaningful for the graph that created them.
///
/// [`SdfGraphBuilder::actor`]: crate::SdfGraphBuilder::actor
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// The dense index of this actor (insertion order, starting at 0).
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates an id from a raw index.
    ///
    /// Prefer the ids returned by the builder; this exists for tooling that
    /// reconstructs ids (e.g. deserialization) and does not validate bounds.
    #[inline]
    pub const fn from_index(i: usize) -> Self {
        ActorId(i)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifies a channel within one [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The dense index of this channel (insertion order, starting at 0).
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates an id from a raw index (unvalidated; see [`ActorId::from_index`]).
    #[inline]
    pub const fn from_index(i: usize) -> Self {
        ChannelId(i)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An actor of a timed SDF graph: a named computation with a fixed execution
/// time (paper, Def. 2: `T : A → ℕ`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Actor {
    pub(crate) name: String,
    pub(crate) execution_time: Time,
}

impl Actor {
    /// The actor's name (unique within its graph).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The actor's execution time: the time elapsing between consumption of
    /// input tokens and production of output tokens in one firing.
    pub fn execution_time(&self) -> Time {
        self.execution_time
    }
}

/// A dependency edge `(a, b, p, c, d)` of an SDF graph (paper, Def. 1): actor
/// `b` depends on actor `a`, with production rate `p`, consumption rate `c`,
/// and `d` initial tokens. Channels behave as unbounded FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    pub(crate) source: ActorId,
    pub(crate) target: ActorId,
    pub(crate) production: u64,
    pub(crate) consumption: u64,
    pub(crate) initial_tokens: u64,
}

impl Channel {
    /// The producing actor `a`.
    pub fn source(&self) -> ActorId {
        self.source
    }

    /// The consuming actor `b`.
    pub fn target(&self) -> ActorId {
        self.target
    }

    /// Tokens produced per firing of the source (`p ≥ 1`).
    pub fn production(&self) -> u64 {
        self.production
    }

    /// Tokens consumed per firing of the target (`c ≥ 1`).
    pub fn consumption(&self) -> u64 {
        self.consumption
    }

    /// The number of initial tokens (`d ≥ 0`).
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Returns `true` if both rates are 1 (a homogeneous edge).
    pub fn is_homogeneous(&self) -> bool {
        self.production == 1 && self.consumption == 1
    }

    /// Returns `true` if source and target are the same actor.
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }
}

/// A timed synchronous dataflow graph (paper, Defs. 1–2).
///
/// Graphs are immutable once built; construct them with [`SdfGraph::builder`]
/// and transform them by building new graphs. All structural invariants
/// (valid endpoints, positive rates, non-negative execution times, unique
/// actor names) are enforced at build time, so analyses never need to
/// re-validate.
///
/// # Example
///
/// ```
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("pipeline");
/// let src = b.actor("src", 1);
/// let dst = b.actor("dst", 4);
/// let ch = b.channel(src, dst, 1, 1, 0)?;
/// let g = b.build()?;
///
/// assert_eq!(g.num_actors(), 2);
/// assert_eq!(g.channel(ch).target(), dst);
/// assert!(g.is_homogeneous());
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfGraph {
    pub(crate) name: String,
    pub(crate) actors: Vec<Actor>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) outgoing: Vec<Vec<ChannelId>>,
    pub(crate) incoming: Vec<Vec<ChannelId>>,
}

impl SdfGraph {
    /// Starts building a graph with the given name.
    pub fn builder(name: impl Into<String>) -> crate::SdfGraphBuilder {
        crate::SdfGraphBuilder::new(name)
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// The number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The actor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// Iterates over `(id, actor)` pairs in insertion order.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &Actor)> {
        self.actors.iter().enumerate().map(|(i, a)| (ActorId(i), a))
    }

    /// Iterates over all actor ids.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.actors.len()).map(ActorId)
    }

    /// Iterates over `(id, channel)` pairs in insertion order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Iterates over all channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len()).map(ChannelId)
    }

    /// The channels leaving `a` (including self-loops).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn outgoing(&self, a: ActorId) -> &[ChannelId] {
        &self.outgoing[a.0]
    }

    /// The channels entering `a` (including self-loops).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn incoming(&self, a: ActorId) -> &[ChannelId] {
        &self.incoming[a.0]
    }

    /// Finds an actor by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.iter().position(|a| a.name == name).map(ActorId)
    }

    /// The total number of initial tokens over all channels.
    ///
    /// This is the dimension `N` of the max-plus matrix of the graph and
    /// bounds the size of the paper's novel HSDF conversion (Sec. 6).
    pub fn total_initial_tokens(&self) -> u64 {
        self.channels.iter().map(|c| c.initial_tokens).sum()
    }

    /// Returns `true` if every channel has production and consumption rate 1
    /// (the graph is a homogeneous SDF graph, HSDFG).
    pub fn is_homogeneous(&self) -> bool {
        self.channels.iter().all(Channel::is_homogeneous)
    }

    /// The maximum execution time over all actors (0 for an empty graph).
    pub fn max_execution_time(&self) -> Time {
        self.actors
            .iter()
            .map(|a| a.execution_time)
            .max()
            .unwrap_or(0)
    }

    /// A deterministic 64-bit content fingerprint (FNV-1a over the name,
    /// actors and channels, in insertion order).
    ///
    /// Graphs are immutable once built, so the fingerprint is a stable
    /// generation id for caches keyed on graph content: two graphs with equal
    /// structure hash equal, and any edit (made by building a new graph)
    /// changes the fingerprint with overwhelming probability. It is *not*
    /// cryptographic — do not use it to authenticate untrusted inputs, and
    /// caches keyed on it must still deep-compare graphs on a hit to rule
    /// out the 2⁻⁶⁴ collision (see `sdfr_analysis::registry`).
    ///
    /// # Ordering is part of the content — deliberately
    ///
    /// Actors and channels are hashed in *insertion order*, and two graphs
    /// that list the same channels in permuted order fingerprint
    /// **differently**. This is intentional: insertion order determines the
    /// dense [`ActorId`]/[`ChannelId`] indices, and those indices are
    /// observable in analysis results (per-channel capacity vectors,
    /// per-actor schedules, token numbering). A cache that treated permuted
    /// graphs as identical would serve one graph's per-channel vectors in
    /// another graph's channel order. Callers wanting order-insensitive
    /// deduplication must canonicalize the build order first.
    ///
    /// Every field of every channel — endpoints, production/consumption
    /// rates, and initial tokens — is hashed with its position, so reordering
    /// rates *within* one channel (e.g. swapping `p` and `c`) or moving a
    /// delay between adjacent channels also changes the fingerprint. Section
    /// tags and length prefixes separate the name/actor/channel sections, so
    /// field sequences cannot alias across section boundaries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_impl(TokenMode::Actual)
    }

    /// Content fingerprint of the graph's *family*: everything
    /// [`fingerprint`](Self::fingerprint) hashes **except** each channel's
    /// initial-token count.
    ///
    /// Two graphs share a family fingerprint exactly when they are identical
    /// up to a redistribution of initial tokens — the shape produced by
    /// capacity probes, Pareto sweeps, and abstraction ladders, which vary
    /// one channel's delay while keeping the topology and rates fixed.
    /// Family fingerprints live in their own hash domain (a distinct section
    /// tag) and must only ever be compared against other family
    /// fingerprints.
    pub fn family_fingerprint(&self) -> u64 {
        self.fingerprint_impl(TokenMode::SkipTokens)
    }

    /// The [`fingerprint`](Self::fingerprint) this graph *would* have if
    /// channel `channel` carried `initial_tokens` tokens instead of its
    /// actual count — without materialising the modified graph.
    ///
    /// This is the delta fingerprint used by the session registry to resolve
    /// near-hits: `base.fingerprint_with_tokens(c, d)` equals
    /// `target.fingerprint()` precisely when `target` differs from `base`
    /// only in channel `c` holding `d` initial tokens (up to the 2⁻⁶⁴
    /// collision bound shared with [`fingerprint`](Self::fingerprint)).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of bounds for this graph.
    pub fn fingerprint_with_tokens(&self, channel: ChannelId, initial_tokens: u64) -> u64 {
        assert!(channel.0 < self.channels.len(), "channel out of bounds");
        self.fingerprint_impl(TokenMode::Override(channel, initial_tokens))
    }

    /// If `other` is identical to `self` except for **exactly one** channel's
    /// initial-token count, returns `(channel, self_tokens, other_tokens)` —
    /// the delta that transforms `self` into `other`.
    ///
    /// Returns `None` when the graphs are byte-identical (no delta needed),
    /// structurally different (name, actors, endpoints, or rates differ), or
    /// differ in more than one channel's token count.
    pub fn initial_token_delta(&self, other: &SdfGraph) -> Option<(ChannelId, u64, u64)> {
        if self.name != other.name
            || self.actors.len() != other.actors.len()
            || self.channels.len() != other.channels.len()
        {
            return None;
        }
        if self
            .actors
            .iter()
            .zip(&other.actors)
            .any(|(a, b)| a.name != b.name || a.execution_time != b.execution_time)
        {
            return None;
        }
        let mut delta = None;
        for (i, (a, b)) in self.channels.iter().zip(&other.channels).enumerate() {
            if a.source != b.source
                || a.target != b.target
                || a.production != b.production
                || a.consumption != b.consumption
            {
                return None;
            }
            if a.initial_tokens != b.initial_tokens {
                if delta.is_some() {
                    return None; // more than one channel differs
                }
                delta = Some((ChannelId(i), a.initial_tokens, b.initial_tokens));
            }
        }
        delta
    }

    fn fingerprint_impl(&self, mode: TokenMode) -> u64 {
        let mut h = Fnv(FNV_OFFSET);
        h.u64(TAG_NAME);
        h.str(&self.name);
        h.u64(TAG_ACTORS);
        h.u64(self.actors.len() as u64);
        for a in &self.actors {
            h.str(&a.name);
            h.u64(a.execution_time as u64);
        }
        h.u64(match mode {
            TokenMode::SkipTokens => TAG_FAMILY,
            _ => TAG_CHANNELS,
        });
        h.u64(self.channels.len() as u64);
        for (i, c) in self.channels.iter().enumerate() {
            h.u64(c.source.0 as u64);
            h.u64(c.target.0 as u64);
            h.u64(c.production);
            h.u64(c.consumption);
            match mode {
                TokenMode::Actual => h.u64(c.initial_tokens),
                TokenMode::Override(ch, tokens) => {
                    h.u64(if ch.0 == i { tokens } else { c.initial_tokens });
                }
                TokenMode::SkipTokens => {}
            }
        }
        h.0
    }
}

/// How [`SdfGraph::fingerprint_impl`] treats each channel's initial tokens.
#[derive(Clone, Copy)]
enum TokenMode {
    /// Hash the actual token counts (the full content fingerprint).
    Actual,
    /// Hash actual counts except one channel's, which is overridden.
    Override(ChannelId, u64),
    /// Omit token counts entirely (the family fingerprint domain).
    SkipTokens,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Domain-separation tags, one per section.
const TAG_NAME: u64 = 0x6e61_6d65; // "name"
const TAG_ACTORS: u64 = 0x6163_7473; // "acts"
const TAG_CHANNELS: u64 = 0x6368_616e; // "chan"
/// Channel-section tag for the token-blind family domain — distinct from
/// `TAG_CHANNELS` so a family fingerprint can never alias a full one.
const TAG_FAMILY: u64 = 0x666d_6c79; // "fmly"

struct Fnv(u64);
impl Fnv {
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

impl fmt::Display for SdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sdf graph '{}': {} actors, {} channels, {} initial tokens",
            self.name,
            self.num_actors(),
            self.num_channels(),
            self.total_initial_tokens()
        )?;
        for (id, a) in self.actors() {
            writeln!(f, "  {} {} [t={}]", id, a.name, a.execution_time)?;
        }
        for (_, c) in self.channels() {
            writeln!(
                f,
                "  {} -({},{},{})-> {}",
                self.actor(c.source).name,
                c.production,
                c.initial_tokens,
                c.consumption,
                self.actor(c.target).name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_actor_graph() -> SdfGraph {
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, 1).unwrap();
        b.channel(c, a, 1, 1, 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let g = two_actor_graph();
        assert_eq!(g.name(), "g");
        assert_eq!(g.num_actors(), 2);
        assert_eq!(g.num_channels(), 2);
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(g.actor(a).name(), "a");
        assert_eq!(g.actor(a).execution_time(), 2);
        assert_eq!(g.total_initial_tokens(), 5);
        assert!(!g.is_homogeneous());
        assert_eq!(g.max_execution_time(), 3);
        assert!(g.actor_by_name("zzz").is_none());
    }

    #[test]
    fn adjacency() {
        let g = two_actor_graph();
        let a = g.actor_by_name("a").unwrap();
        let b = g.actor_by_name("b").unwrap();
        assert_eq!(g.outgoing(a).len(), 1);
        assert_eq!(g.incoming(a).len(), 1);
        let ch = g.channel(g.outgoing(a)[0]);
        assert_eq!(ch.source(), a);
        assert_eq!(ch.target(), b);
        assert_eq!(ch.production(), 2);
        assert_eq!(ch.consumption(), 3);
        assert_eq!(ch.initial_tokens(), 1);
        assert!(!ch.is_homogeneous());
        assert!(!ch.is_self_loop());
    }

    #[test]
    fn self_loop_channel() {
        let mut b = SdfGraph::builder("sl");
        let a = b.actor("a", 1);
        b.channel(a, a, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let (_, ch) = g.channels().next().unwrap();
        assert!(ch.is_self_loop());
        assert!(ch.is_homogeneous());
        assert_eq!(g.outgoing(a).len(), 1);
        assert_eq!(g.incoming(a).len(), 1);
    }

    #[test]
    fn ids_display_and_roundtrip() {
        let g = two_actor_graph();
        let a = g.actor_ids().next().unwrap();
        assert_eq!(a.to_string(), "a0");
        assert_eq!(ActorId::from_index(a.index()), a);
        let c = g.channel_ids().next().unwrap();
        assert_eq!(c.to_string(), "c0");
        assert_eq!(ChannelId::from_index(c.index()), c);
    }

    #[test]
    fn display_lists_structure() {
        let g = two_actor_graph();
        let s = g.to_string();
        assert!(s.contains("2 actors"));
        assert!(s.contains("a -(2,1,3)-> b"));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let g1 = two_actor_graph();
        let g2 = two_actor_graph();
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        assert_eq!(g1.fingerprint(), g1.clone().fingerprint());

        // Any content difference — a token, a rate, a name — changes it.
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, 2).unwrap(); // one extra initial token
        b.channel(c, a, 1, 1, 4).unwrap();
        let g3 = b.build().unwrap();
        assert_ne!(g1.fingerprint(), g3.fingerprint());

        let mut b = SdfGraph::builder("renamed");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, 1).unwrap();
        b.channel(c, a, 1, 1, 4).unwrap();
        let g4 = b.build().unwrap();
        assert_ne!(g1.fingerprint(), g4.fingerprint());
    }

    #[test]
    fn permuted_channel_insertion_orders_fingerprint_differently() {
        // Same actors, same channel multiset, opposite insertion order. The
        // two graphs assign opposite ChannelId indices, and per-channel
        // analysis results (capacity vectors, peak-token reports) are indexed
        // by ChannelId — so these are distinct cache identities on purpose.
        let build = |swap: bool| {
            let mut b = SdfGraph::builder("perm");
            let a = b.actor("a", 2);
            let c = b.actor("b", 3);
            if swap {
                b.channel(c, a, 1, 1, 4).unwrap();
                b.channel(a, c, 2, 3, 1).unwrap();
            } else {
                b.channel(a, c, 2, 3, 1).unwrap();
                b.channel(c, a, 1, 1, 4).unwrap();
            }
            b.build().unwrap()
        };
        let g1 = build(false);
        let g2 = build(true);
        assert_ne!(g1, g2, "channel order is part of graph identity");
        assert_ne!(
            g1.fingerprint(),
            g2.fingerprint(),
            "permuted channel insertion order must change the fingerprint"
        );
    }

    #[test]
    fn fingerprint_separates_adjacent_channel_fields() {
        // Swapping a channel's production/consumption rates, or moving a
        // delay from one channel to its neighbour, must change the hash even
        // though the flat field sequence is similar.
        let build = |p: u64, c: u64, d0: u64, d1: u64| {
            let mut b = SdfGraph::builder("fields");
            let a = b.actor("a", 1);
            let z = b.actor("z", 1);
            b.channel(a, z, p, c, d0).unwrap();
            b.channel(z, a, 1, 1, d1).unwrap();
            b.build().unwrap()
        };
        let base = build(2, 3, 1, 4);
        assert_ne!(base.fingerprint(), build(3, 2, 1, 4).fingerprint());
        assert_ne!(base.fingerprint(), build(2, 3, 4, 1).fingerprint());
        assert_ne!(base.fingerprint(), build(2, 3, 0, 5).fingerprint());
    }

    #[test]
    fn empty_graph() {
        let g = SdfGraph::builder("empty").build().unwrap();
        assert_eq!(g.num_actors(), 0);
        assert_eq!(g.max_execution_time(), 0);
        assert!(g.is_homogeneous());
        assert_eq!(g.total_initial_tokens(), 0);
    }

    /// `two_actor_graph` with channel 0 carrying `d` initial tokens instead
    /// of its usual 1.
    fn variant_with_tokens(d: u64) -> SdfGraph {
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, d).unwrap();
        b.channel(c, a, 1, 1, 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn family_fingerprint_is_token_blind_but_structure_sensitive() {
        let base = two_actor_graph();
        // Same family regardless of where the tokens sit.
        assert_eq!(
            base.family_fingerprint(),
            variant_with_tokens(0).family_fingerprint()
        );
        assert_eq!(
            base.family_fingerprint(),
            variant_with_tokens(9).family_fingerprint()
        );
        // Distinct hash domain: never equal to the full fingerprint.
        assert_ne!(base.family_fingerprint(), base.fingerprint());
        // A rate or name change breaks the family.
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 4, 1).unwrap();
        b.channel(c, a, 1, 1, 4).unwrap();
        let other_rates = b.build().unwrap();
        assert_ne!(base.family_fingerprint(), other_rates.family_fingerprint());
    }

    #[test]
    fn fingerprint_with_tokens_matches_the_materialised_variant() {
        let base = two_actor_graph();
        for d in [0, 1, 2, 7] {
            assert_eq!(
                base.fingerprint_with_tokens(ChannelId(0), d),
                variant_with_tokens(d).fingerprint(),
                "delta fingerprint must equal the real fingerprint at d={d}"
            );
        }
        // Overriding with the actual count reproduces the plain fingerprint.
        assert_eq!(
            base.fingerprint_with_tokens(ChannelId(1), 4),
            base.fingerprint()
        );
    }

    #[test]
    fn initial_token_delta_finds_single_channel_changes_only() {
        let base = two_actor_graph();
        let moved = variant_with_tokens(6);
        assert_eq!(base.initial_token_delta(&moved), Some((ChannelId(0), 1, 6)));
        assert_eq!(moved.initial_token_delta(&base), Some((ChannelId(0), 6, 1)));
        // Identical graphs: no delta.
        assert_eq!(base.initial_token_delta(&two_actor_graph()), None);
        // Two channels changed: not a single-channel delta.
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 2);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, 5).unwrap();
        b.channel(c, a, 1, 1, 5).unwrap();
        let two_changed = b.build().unwrap();
        assert_eq!(base.initial_token_delta(&two_changed), None);
        // Structural difference: None even when tokens also differ.
        let mut b = SdfGraph::builder("g");
        let a = b.actor("a", 9);
        let c = b.actor("b", 3);
        b.channel(a, c, 2, 3, 6).unwrap();
        b.channel(c, a, 1, 1, 4).unwrap();
        let other_time = b.build().unwrap();
        assert_eq!(base.initial_token_delta(&other_time), None);
    }
}

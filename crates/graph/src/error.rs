//! Errors for SDF graph construction and analysis.

use std::error::Error;
use std::fmt;

use crate::{ActorId, ChannelId};

/// Errors raised by graph construction and the analyses in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// An actor id does not belong to the graph under construction.
    UnknownActor {
        /// The offending id.
        actor: ActorId,
        /// Number of actors currently in the graph.
        num_actors: usize,
    },
    /// A channel rate was zero (rates must be at least 1, Def. 1).
    ZeroRate {
        /// Index of the offending channel (in insertion order).
        channel: usize,
    },
    /// An actor was given a negative execution time (`T : A → ℕ`, Def. 2).
    NegativeExecutionTime {
        /// Name of the offending actor.
        actor: String,
    },
    /// Two actors share a name.
    DuplicateActorName {
        /// The duplicated name.
        name: String,
    },
    /// An actor name is empty.
    EmptyActorName,
    /// The graph is inconsistent: the balance equations have no non-trivial
    /// solution, so no repetition vector exists (Sec. 3).
    Inconsistent {
        /// A channel witnessing the inconsistency.
        channel: ChannelId,
    },
    /// The graph deadlocks: no complete iteration can be executed.
    Deadlock {
        /// Firings completed before the deadlock.
        fired: u64,
        /// Firings required for a full iteration.
        needed: u64,
    },
    /// An operation required a homogeneous graph (all rates 1).
    NotHomogeneous {
        /// A channel with a rate different from 1.
        channel: ChannelId,
    },
    /// A numeric quantity (repetition vector entry, token count, …)
    /// overflowed its integer type.
    Overflow {
        /// Short description of the computation that overflowed.
        what: &'static str,
    },
    /// A firing index referenced a firing beyond an actor's repetition
    /// count (firings within one iteration are numbered `0..γ(a)`).
    FiringOutOfRange {
        /// The actor whose firing was referenced.
        actor: ActorId,
        /// The requested firing index.
        firing: u64,
        /// The actor's repetition-vector entry `γ(a)`.
        gamma: u64,
    },
    /// A per-channel capacity vector has the wrong number of entries.
    CapacityArityMismatch {
        /// The graph's channel count.
        expected: usize,
        /// The number of capacities supplied.
        found: usize,
    },
    /// A channel capacity is below the channel's initial token count, so
    /// the initial state already violates the bound.
    CapacityBelowTokens {
        /// The offending channel.
        channel: ChannelId,
        /// The supplied capacity.
        capacity: u64,
        /// The channel's initial token count.
        tokens: u64,
    },
    /// A resource budget ([`crate::budget::Budget`]) was exhausted before
    /// the computation finished. The computation is abandoned, not wrong:
    /// callers can retry with a larger budget or degrade to a conservative
    /// abstraction bound (see `sdfr-core`).
    Exhausted {
        /// Which limit ran out.
        resource: crate::budget::BudgetResource,
        /// Amount consumed when the computation gave up (same unit as
        /// `limit`; see [`crate::budget::BudgetResource`] for units).
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::UnknownActor { actor, num_actors } => write!(
                f,
                "actor id {actor} does not belong to this graph ({num_actors} actors)"
            ),
            SdfError::ZeroRate { channel } => {
                write!(f, "channel {channel} has a zero rate; rates must be >= 1")
            }
            SdfError::NegativeExecutionTime { actor } => {
                write!(f, "actor '{actor}' has a negative execution time")
            }
            SdfError::DuplicateActorName { name } => {
                write!(f, "duplicate actor name '{name}'")
            }
            SdfError::EmptyActorName => write!(f, "actor names must be non-empty"),
            SdfError::Inconsistent { channel } => write!(
                f,
                "graph is inconsistent: balance equation of channel {channel} has no solution"
            ),
            SdfError::Deadlock { fired, needed } => write!(
                f,
                "graph deadlocks after {fired} of {needed} firings of an iteration"
            ),
            SdfError::NotHomogeneous { channel } => write!(
                f,
                "operation requires a homogeneous graph, but channel {channel} has a rate != 1"
            ),
            SdfError::Overflow { what } => write!(f, "integer overflow while computing {what}"),
            SdfError::FiringOutOfRange {
                actor,
                firing,
                gamma,
            } => write!(
                f,
                "firing {firing} of actor {actor} is out of range (gamma = {gamma})"
            ),
            SdfError::CapacityArityMismatch { expected, found } => write!(
                f,
                "expected one capacity per channel ({expected}), got {found}"
            ),
            SdfError::CapacityBelowTokens {
                channel,
                capacity,
                tokens,
            } => write!(
                f,
                "capacity {capacity} of channel {channel} is below its {tokens} initial tokens"
            ),
            SdfError::Exhausted {
                resource,
                spent,
                limit,
            } => write!(
                f,
                "resource budget exhausted: {resource} used {spent} of limit {limit}"
            ),
        }
    }
}

impl Error for SdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(SdfError, &str)> = vec![
            (
                SdfError::UnknownActor {
                    actor: ActorId(7),
                    num_actors: 3,
                },
                "a7",
            ),
            (SdfError::ZeroRate { channel: 2 }, "zero rate"),
            (SdfError::NegativeExecutionTime { actor: "x".into() }, "'x'"),
            (
                SdfError::DuplicateActorName { name: "a".into() },
                "duplicate",
            ),
            (SdfError::EmptyActorName, "non-empty"),
            (
                SdfError::Inconsistent {
                    channel: ChannelId(0),
                },
                "inconsistent",
            ),
            (
                SdfError::Deadlock {
                    fired: 3,
                    needed: 10,
                },
                "3 of 10",
            ),
            (
                SdfError::NotHomogeneous {
                    channel: ChannelId(1),
                },
                "homogeneous",
            ),
            (
                SdfError::Overflow {
                    what: "repetition vector",
                },
                "overflow",
            ),
            (
                SdfError::FiringOutOfRange {
                    actor: ActorId(1),
                    firing: 5,
                    gamma: 3,
                },
                "out of range",
            ),
            (
                SdfError::CapacityArityMismatch {
                    expected: 3,
                    found: 2,
                },
                "one capacity per channel",
            ),
            (
                SdfError::CapacityBelowTokens {
                    channel: ChannelId(4),
                    capacity: 1,
                    tokens: 3,
                },
                "initial tokens",
            ),
            (
                SdfError::Exhausted {
                    resource: crate::budget::BudgetResource::Firings,
                    spent: 1_000_001,
                    limit: 1_000_000,
                },
                "exhausted",
            ),
        ];
        for (e, frag) in cases {
            assert!(
                e.to_string().contains(frag),
                "message {:?} should contain {:?}",
                e.to_string(),
                frag
            );
        }
    }
}

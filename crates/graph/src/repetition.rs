//! Consistency and repetition vectors (paper, Sec. 3).
//!
//! A graph is *consistent* if the balance equations
//! `γ(a) · p = γ(b) · c` (one per channel `(a, b, p, c, d)`) have a
//! non-trivial solution; the smallest positive integer solution is the
//! *repetition vector* γ. Executing every actor `a` exactly `γ(a)` times
//! (one *iteration*) returns the token distribution to its initial state.

use std::ops::Index;

use sdfr_maxplus::Rational;

use crate::{ActorId, ChannelId, SdfError, SdfGraph};

/// The repetition vector of a consistent SDF graph: the smallest positive
/// numbers of firings per actor that return the graph to its initial token
/// distribution.
///
/// For a weakly disconnected graph each component is scaled independently to
/// its smallest solution (the customary convention).
///
/// # Example
///
/// ```
/// use sdfr_graph::SdfGraph;
/// use sdfr_graph::repetition::repetition_vector;
///
/// let mut b = SdfGraph::builder("updown");
/// let a = b.actor("a", 1);
/// let c = b.actor("b", 1);
/// b.channel(a, c, 3, 5, 0)?;
/// let g = b.build()?;
/// let gamma = repetition_vector(&g)?;
/// assert_eq!(gamma[a], 5);
/// assert_eq!(gamma[c], 3);
/// assert_eq!(gamma.iteration_length(), 8);
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionVector {
    entries: Vec<u64>,
}

impl RepetitionVector {
    /// The entry for actor `a` (the number of firings per iteration).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the graph the vector was computed
    /// for.
    pub fn get(&self, a: ActorId) -> u64 {
        self.entries[a.index()]
    }

    /// The number of actors covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the vector is empty (empty graph).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The total number of firings in one iteration, `Σ_a γ(a)`.
    ///
    /// This is exactly the number of actors the *traditional* SDF→HSDF
    /// conversion produces (Table 1, "traditional conversion" column).
    pub fn iteration_length(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Returns `true` if every entry is 1 (e.g. for a homogeneous graph).
    pub fn is_trivial(&self) -> bool {
        self.entries.iter().all(|&e| e == 1)
    }

    /// Iterates over `(actor, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ActorId, u64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &e)| (ActorId::from_index(i), e))
    }

    /// The entries as a slice indexed by actor index.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

impl Index<ActorId> for RepetitionVector {
    type Output = u64;

    fn index(&self, a: ActorId) -> &u64 {
        &self.entries[a.index()]
    }
}

/// Computes the repetition vector of `g`.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if the balance equations have no solution
///   (with a witnessing channel),
/// - [`SdfError::Overflow`] if an entry exceeds `i64`/`u64` range.
pub fn repetition_vector(g: &SdfGraph) -> Result<RepetitionVector, SdfError> {
    let n = g.num_actors();
    let mut ratio: Vec<Option<Rational>> = vec![None; n];

    // Propagate firing-rate ratios over each weakly connected component.
    for seed in 0..n {
        if ratio[seed].is_some() {
            continue;
        }
        ratio[seed] = Some(Rational::ONE);
        let mut stack = vec![ActorId::from_index(seed)];
        let mut component = vec![seed];
        while let Some(a) = stack.pop() {
            let ra = ratio[a.index()].expect("visited actors have ratios");
            let neighbors = g
                .outgoing(a)
                .iter()
                .chain(g.incoming(a).iter())
                .copied()
                .collect::<Vec<ChannelId>>();
            for cid in neighbors {
                let ch = g.channel(cid);
                // Balance: γ(src) * p = γ(dst) * c.
                let (other, implied) = if ch.source() == a {
                    (
                        ch.target(),
                        ra * Rational::new(ch.production() as i64, ch.consumption() as i64),
                    )
                } else {
                    (
                        ch.source(),
                        ra * Rational::new(ch.consumption() as i64, ch.production() as i64),
                    )
                };
                match ratio[other.index()] {
                    None => {
                        ratio[other.index()] = Some(implied);
                        component.push(other.index());
                        stack.push(other);
                    }
                    Some(existing) => {
                        // Self-loops check p == c via the same equation.
                        if existing != implied {
                            return Err(SdfError::Inconsistent { channel: cid });
                        }
                    }
                }
            }
        }
        scale_component(&mut ratio, &component)?;
    }

    let mut entries = Vec::with_capacity(n);
    for r in ratio {
        let r = r.expect("all actors visited");
        debug_assert!(r.is_integer() && r.numer() > 0);
        entries.push(u64::try_from(r.numer()).map_err(|_| SdfError::Overflow {
            what: "repetition vector entry",
        })?);
    }
    Ok(RepetitionVector { entries })
}

/// Rescales the rational ratios of one component to the smallest positive
/// integer solution.
fn scale_component(ratio: &mut [Option<Rational>], component: &[usize]) -> Result<(), SdfError> {
    fn gcd(mut a: i64, mut b: i64) -> i64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a.abs()
    }
    fn lcm(a: i64, b: i64) -> Option<i64> {
        (a / gcd(a, b)).checked_mul(b)
    }

    let mut l: i64 = 1;
    for &i in component {
        let den = ratio[i].expect("component visited").denom();
        l = lcm(l, den).ok_or(SdfError::Overflow {
            what: "repetition vector scaling",
        })?;
    }
    let mut g: i64 = 0;
    let mut scaled = Vec::with_capacity(component.len());
    for &i in component {
        let r = ratio[i].expect("component visited");
        let v = r
            .numer()
            .checked_mul(l / r.denom())
            .ok_or(SdfError::Overflow {
                what: "repetition vector scaling",
            })?;
        scaled.push(v);
        g = gcd(g, v);
    }
    let g = g.max(1);
    for (&i, v) in component.iter().zip(scaled) {
        ratio[i] = Some(Rational::from(v / g));
    }
    Ok(())
}

/// Checks consistency without materializing the vector.
///
/// # Errors
///
/// Propagates the same errors as [`repetition_vector`].
pub fn check_consistent(g: &SdfGraph) -> Result<(), SdfError> {
    repetition_vector(g).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_graph_is_all_ones() {
        let mut b = SdfGraph::builder("h");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert!(gamma.is_trivial());
        assert_eq!(gamma.iteration_length(), 2);
    }

    #[test]
    fn paper_fig3_style_rates() {
        // Left actor produces 1, right consumes 2: left fires twice.
        let mut b = SdfGraph::builder("f3");
        let l = b.actor("l", 3);
        let r = b.actor("r", 1);
        b.channel(l, r, 1, 2, 0).unwrap();
        b.channel(r, l, 2, 1, 2).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma[l], 2);
        assert_eq!(gamma[r], 1);
        assert_eq!(gamma.iteration_length(), 3);
    }

    #[test]
    fn cd2dat_chain() {
        // Classic CD-to-DAT sample-rate converter: rates chosen so the
        // repetition vector is (147, 147, 98, 28, 32, 160), sum 612.
        let mut b = SdfGraph::builder("cd2dat");
        let a = b.actor("a", 1);
        let b2 = b.actor("b", 1);
        let c = b.actor("c", 1);
        let d = b.actor("d", 1);
        let e = b.actor("e", 1);
        let f = b.actor("f", 1);
        b.channel(a, b2, 1, 1, 0).unwrap();
        b.channel(b2, c, 2, 3, 0).unwrap();
        b.channel(c, d, 2, 7, 0).unwrap();
        b.channel(d, e, 8, 7, 0).unwrap();
        b.channel(e, f, 5, 1, 0).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma.as_slice(), &[147, 147, 98, 28, 32, 160]);
        assert_eq!(gamma.iteration_length(), 612);
    }

    #[test]
    fn inconsistent_cycle_detected() {
        // a -(2:1)-> b -(1:1)-> a demands γa*2 = γb and γb = γa.
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        let bad = b.channel(y, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        match repetition_vector(&g) {
            Err(SdfError::Inconsistent { channel }) => assert_eq!(channel, bad),
            other => panic!("expected inconsistency, got {other:?}"),
        }
        assert!(check_consistent(&g).is_err());
    }

    #[test]
    fn inconsistent_self_loop_detected() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        b.channel(x, x, 2, 3, 5).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            repetition_vector(&g),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn consistent_self_loop_ok() {
        let mut b = SdfGraph::builder("ok");
        let x = b.actor("x", 1);
        b.channel(x, x, 3, 3, 3).unwrap();
        let g = b.build().unwrap();
        assert_eq!(repetition_vector(&g).unwrap()[x], 1);
    }

    #[test]
    fn disconnected_components_scaled_independently() {
        let mut b = SdfGraph::builder("two");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let u = b.actor("u", 1);
        let v = b.actor("v", 1);
        b.channel(x, y, 2, 4, 0).unwrap(); // γx=2, γy=1
        b.channel(u, v, 1, 1, 0).unwrap(); // γu=γv=1
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma.as_slice(), &[2, 1, 1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = SdfGraph::builder("e").build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert!(gamma.is_empty());
        assert_eq!(gamma.iteration_length(), 0);
        assert_eq!(gamma.len(), 0);
    }

    #[test]
    fn smallest_solution_is_chosen() {
        // Rates (4, 2): ratio is 1:2 but smallest integers are 1 and 2, not
        // 2 and 4.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 4, 2, 0).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma.as_slice(), &[1, 2]);
    }

    #[test]
    fn iterator_yields_pairs() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        let pairs: Vec<_> = gamma.iter().collect();
        assert_eq!(pairs, vec![(x, 1)]);
    }

    #[test]
    fn multi_edge_between_same_actors_must_agree() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(x, y, 4, 6, 0).unwrap(); // same ratio, fine
        let g = b.build().unwrap();
        assert_eq!(repetition_vector(&g).unwrap().as_slice(), &[3, 2]);

        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(x, y, 1, 1, 0).unwrap(); // conflicting ratio
        let g = b.build().unwrap();
        assert!(repetition_vector(&g).is_err());
    }
}

//! Periodic admissible sequential schedules (PASS).
//!
//! A consistent SDF graph is deadlock-free iff one full iteration (every
//! actor `a` fired `γ(a)` times) can be executed sequentially from the
//! initial token distribution (Lee & Messerschmitt's class-S algorithm).
//! The paper's Algorithm 1 executes such a schedule symbolically, and any
//! valid sequential schedule yields the same max-plus matrix because SDF
//! execution is determinate.

use crate::budget::{Budget, BudgetMeter};
use crate::repetition::RepetitionVector;
use crate::{ActorId, SdfError, SdfGraph};

/// A sequential schedule for one iteration of an SDF graph: a sequence of
/// actor firings that is admissible (every firing is enabled when reached)
/// and fires each actor `a` exactly `γ(a)` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    firings: Vec<ActorId>,
}

impl Schedule {
    /// The firings in order.
    pub fn firings(&self) -> &[ActorId] {
        &self.firings
    }

    /// The number of firings (the iteration length).
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// Returns `true` if the schedule has no firings (empty graph).
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }

    /// Counts the firings of each actor; index by [`ActorId::index`].
    pub fn fire_counts(&self, num_actors: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_actors];
        for a in &self.firings {
            counts[a.index()] += 1;
        }
        counts
    }
}

/// Constructs a periodic admissible sequential schedule for one iteration.
///
/// The schedule greedily fires maximal batches of enabled actors until every
/// actor `a` has fired `γ(a)` times.
///
/// # Errors
///
/// Returns [`SdfError::Deadlock`] if no complete iteration can be executed
/// (the graph is not live).
///
/// # Example
///
/// ```
/// use sdfr_graph::SdfGraph;
/// use sdfr_graph::repetition::repetition_vector;
/// use sdfr_graph::schedule::sequential_schedule;
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 1, 2, 0)?;
/// let g = b.build()?;
/// let gamma = repetition_vector(&g)?;
/// let s = sequential_schedule(&g, &gamma)?;
/// assert_eq!(s.len(), 3); // x, x, y
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn sequential_schedule(g: &SdfGraph, gamma: &RepetitionVector) -> Result<Schedule, SdfError> {
    sequential_schedule_with_budget(g, gamma, &Budget::unlimited())
}

/// [`sequential_schedule`] under a resource [`Budget`].
///
/// The iteration length `Σγ(a)` can be exponential in the graph description
/// (paper, Sec. 2); the budget's firing cap is checked *before* the schedule
/// buffer is allocated, so a pathological graph fails fast instead of
/// exhausting memory.
///
/// # Errors
///
/// As [`sequential_schedule`], plus [`SdfError::Exhausted`] when the budget
/// runs out.
pub fn sequential_schedule_with_budget(
    g: &SdfGraph,
    gamma: &RepetitionVector,
    budget: &Budget,
) -> Result<Schedule, SdfError> {
    let mut meter = budget.meter();
    sequential_schedule_metered(g, gamma, &mut meter)
}

/// Upper bound on firings scheduled between budget checks. Splitting large
/// batches keeps deadline polling responsive and bounds the memory committed
/// past an expired budget; it does not change the resulting schedule beyond
/// batch granularity (any interleaving of maximal batches is admissible).
const BATCH_CHUNK: u64 = 1 << 16;

/// [`sequential_schedule`] charging an existing [`BudgetMeter`]; composite
/// analyses use this to account schedule construction and later phases
/// against one cumulative budget.
///
/// # Errors
///
/// See [`sequential_schedule_with_budget`].
pub fn sequential_schedule_metered(
    g: &SdfGraph,
    gamma: &RepetitionVector,
    meter: &mut BudgetMeter<'_>,
) -> Result<Schedule, SdfError> {
    let n = g.num_actors();
    let mut tokens: Vec<u64> = g.channels().map(|(_, c)| c.initial_tokens()).collect();
    let mut remaining: Vec<u64> = (0..n).map(|i| gamma.get(ActorId::from_index(i))).collect();
    let needed = remaining
        .iter()
        .try_fold(0u64, |s, &r| s.checked_add(r))
        .ok_or(SdfError::Overflow {
            what: "iteration length (sum of repetition vector)",
        })?;
    meter.precheck(needed)?;
    let mut fired: u64 = 0;
    let mut firings = Vec::with_capacity(needed.min(BATCH_CHUNK) as usize);

    loop {
        let mut progress = false;
        for a in g.actor_ids() {
            let rem = remaining[a.index()];
            if rem == 0 {
                continue;
            }
            // The largest admissible sequential batch of firings of `a`: in
            // a *sequential* schedule each firing completes (produces) before
            // the next starts, so a consistent self-loop (p == c) only needs
            // tokens >= c once, while an ordinary input needs k*c tokens for
            // k firings.
            let mut batch = rem.min(BATCH_CHUNK);
            for &cid in g.incoming(a) {
                let ch = g.channel(cid);
                let avail = tokens[cid.index()];
                batch = if ch.is_self_loop() {
                    if avail >= ch.consumption() {
                        batch
                    } else {
                        0
                    }
                } else {
                    batch.min(avail / ch.consumption())
                };
                if batch == 0 {
                    break;
                }
            }
            if batch == 0 {
                continue;
            }
            for &cid in g.incoming(a) {
                let ch = g.channel(cid);
                if !ch.is_self_loop() {
                    tokens[cid.index()] -= batch * ch.consumption();
                }
            }
            for &cid in g.outgoing(a) {
                let ch = g.channel(cid);
                if !ch.is_self_loop() {
                    tokens[cid.index()] = tokens[cid.index()]
                        .checked_add(batch * ch.production())
                        .ok_or(SdfError::Overflow {
                            what: "token count during scheduling",
                        })?;
                }
            }
            remaining[a.index()] -= batch;
            fired += batch;
            meter.spend(batch)?;
            firings.extend(std::iter::repeat_n(a, batch as usize));
            progress = true;
        }
        if remaining.iter().all(|&r| r == 0) {
            return Ok(Schedule { firings });
        }
        if !progress {
            return Err(SdfError::Deadlock { fired, needed });
        }
    }
}

/// Checks that `schedule` is admissible for `g` and fires each actor exactly
/// its repetition-vector count, returning the final check result.
///
/// Used by tests and as a debugging aid.
pub fn is_valid_schedule(g: &SdfGraph, gamma: &RepetitionVector, schedule: &Schedule) -> bool {
    let mut tokens: Vec<i128> = g
        .channels()
        .map(|(_, c)| c.initial_tokens() as i128)
        .collect();
    for &a in schedule.firings() {
        for &cid in g.incoming(a) {
            let ch = g.channel(cid);
            tokens[cid.index()] -= ch.consumption() as i128;
        }
        for &cid in g.outgoing(a) {
            let ch = g.channel(cid);
            tokens[cid.index()] += ch.production() as i128;
        }
        if tokens.iter().any(|&t| t < 0) {
            return false;
        }
    }
    // Exactly gamma firings per actor, and tokens returned to initial state.
    let counts = schedule.fire_counts(g.num_actors());
    counts
        .iter()
        .enumerate()
        .all(|(i, &c)| c == gamma.get(ActorId::from_index(i)))
        && g.channels()
            .all(|(cid, c)| tokens[cid.index()] == c.initial_tokens() as i128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repetition::repetition_vector;

    fn schedule_of(g: &SdfGraph) -> Result<Schedule, SdfError> {
        let gamma = repetition_vector(g)?;
        sequential_schedule(g, &gamma)
    }

    #[test]
    fn chain_schedule() {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        let z = b.actor("z", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        b.channel(y, z, 1, 2, 0).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        let s = sequential_schedule(&g, &gamma).unwrap();
        assert_eq!(s.len(), 4); // γ = (1, 2, 1)
        assert!(is_valid_schedule(&g, &gamma, &s));
        assert_eq!(s.fire_counts(3), vec![1, 2, 1]);
    }

    #[test]
    fn deadlocked_cycle_detected() {
        // Token-free cycle: nothing can ever fire.
        let mut b = SdfGraph::builder("dead");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        match schedule_of(&g) {
            Err(SdfError::Deadlock {
                fired: 0,
                needed: 2,
            }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn partially_progressing_deadlock() {
        // x can fire once, then the cycle starves.
        let mut b = SdfGraph::builder("dead2");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 2, 0).unwrap();
        b.channel(y, x, 2, 1, 1).unwrap();
        let g = b.build().unwrap();
        match schedule_of(&g) {
            Err(SdfError::Deadlock { fired, needed }) => {
                assert_eq!(fired, 1);
                assert_eq!(needed, 3);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_with_enough_tokens_is_live() {
        let mut b = SdfGraph::builder("live");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 2, 1).unwrap();
        b.channel(y, x, 2, 1, 1).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        let s = sequential_schedule(&g, &gamma).unwrap();
        assert!(is_valid_schedule(&g, &gamma, &s));
    }

    #[test]
    fn self_loop_serializes_but_completes() {
        let mut b = SdfGraph::builder("sl");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 3, 0).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma[x], 3);
        let s = sequential_schedule(&g, &gamma).unwrap();
        assert!(is_valid_schedule(&g, &gamma, &s));
    }

    #[test]
    fn tokenless_self_loop_deadlocks() {
        let mut b = SdfGraph::builder("sl0");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(schedule_of(&g), Err(SdfError::Deadlock { .. })));
    }

    #[test]
    fn cd2dat_schedule_length() {
        let mut b = SdfGraph::builder("cd2dat");
        let ids: Vec<_> = (0..6).map(|i| b.actor(format!("a{i}"), 1)).collect();
        let rates = [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)];
        for (i, (p, c)) in rates.iter().enumerate() {
            b.channel(ids[i], ids[i + 1], *p, *c, 0).unwrap();
        }
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        let s = sequential_schedule(&g, &gamma).unwrap();
        assert_eq!(s.len(), 612);
        assert!(is_valid_schedule(&g, &gamma, &s));
    }

    #[test]
    fn empty_graph_has_empty_schedule() {
        let g = SdfGraph::builder("e").build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        let s = sequential_schedule(&g, &gamma).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn invalid_schedule_rejected_by_checker() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        let gamma = repetition_vector(&g).unwrap();
        // y before x is not admissible.
        let bad = Schedule {
            firings: vec![y, x],
        };
        assert!(!is_valid_schedule(&g, &gamma, &bad));
        // Wrong multiplicity.
        let bad = Schedule {
            firings: vec![x, x],
        };
        assert!(!is_valid_schedule(&g, &gamma, &bad));
    }
}

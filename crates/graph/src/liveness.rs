//! Deadlock detection.
//!
//! A consistent SDF graph is *live* (deadlock-free) iff one complete
//! iteration can be executed from the initial token distribution; executing
//! any number of further iterations is then possible because the token
//! distribution is restored (Lee & Messerschmitt, 1987).

use crate::repetition::repetition_vector;
use crate::schedule::sequential_schedule;
use crate::{SdfError, SdfGraph};

/// Checks that `g` is consistent and deadlock-free.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if the graph has no repetition vector,
/// - [`SdfError::Deadlock`] if an iteration cannot complete.
///
/// # Example
///
/// ```
/// use sdfr_graph::{liveness, SdfGraph};
///
/// let mut b = SdfGraph::builder("live");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 1, 1, 0)?;
/// b.channel(y, x, 1, 1, 1)?;
/// let g = b.build()?;
/// assert!(liveness::check_live(&g).is_ok());
/// assert!(liveness::is_live(&g));
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn check_live(g: &SdfGraph) -> Result<(), SdfError> {
    let gamma = repetition_vector(g)?;
    sequential_schedule(g, &gamma).map(|_| ())
}

/// Returns `true` if `g` is consistent and deadlock-free.
pub fn is_live(g: &SdfGraph) -> bool {
    check_live(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_graph() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(is_live(&g));
    }

    #[test]
    fn deadlocked_graph() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(!is_live(&g));
        assert!(matches!(check_live(&g), Err(SdfError::Deadlock { .. })));
    }

    #[test]
    fn inconsistent_graph_reported() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 2, 5).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(check_live(&g), Err(SdfError::Inconsistent { .. })));
        assert!(!is_live(&g));
    }
}

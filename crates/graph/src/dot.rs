//! Graphviz DOT export for SDF graphs.

use std::fmt::Write as _;

use crate::SdfGraph;

/// Renders `g` in Graphviz DOT syntax.
///
/// Actors become nodes labelled `name [t]`; channels become edges labelled
/// with `p:c` rates and decorated with the initial-token count (`d=…`) when
/// non-zero, mirroring the dot notation used by SDF3.
///
/// # Example
///
/// ```
/// use sdfr_graph::{dot, SdfGraph};
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 2);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 3, 2, 1)?;
/// let s = dot::to_dot(&b.build()?);
/// assert!(s.contains("digraph"));
/// assert!(s.contains("3:2"));
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn to_dot(g: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(g.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (id, a) in g.actors() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n[{}]\"];",
            id.index(),
            escape(a.name()),
            a.execution_time()
        );
    }
    for (_, c) in g.channels() {
        let tokens = if c.initial_tokens() > 0 {
            format!(" d={}", c.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}:{}{}\"];",
            c.source().index(),
            c.target().index(),
            c.production(),
            c.consumption(),
            tokens
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_structure() {
        let mut b = SdfGraph::builder("my \"graph\"");
        let x = b.actor("x", 2);
        let y = b.actor("y", 1);
        b.channel(x, y, 3, 2, 4).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        let s = to_dot(&g);
        assert!(s.starts_with("digraph"));
        assert!(s.contains("\\\"graph\\\""));
        assert!(s.contains("n0 -> n1"));
        assert!(s.contains("3:2 d=4"));
        assert!(s.contains("1:1\"")); // no token decoration when d=0
        assert!(s.ends_with("}\n"));
    }
}

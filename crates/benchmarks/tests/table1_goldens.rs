//! Golden regression anchors for the Table-1 suite (Geilen, DAC 2009).
//!
//! The exact rational period, repetition-vector sum, token count,
//! iteration makespan, and bottleneck (critical tokens and channels) of
//! every Table-1 graph were dumped from the checked `Mp` datapath *before*
//! the flat branch-free kernel landed, and are pinned here verbatim. Any
//! kernel or engine change that shifts a single digit of a single case —
//! a saturation leaking into a result, a reordered token, a drifted
//! eigenvalue — fails this test with a line-level diff.

use sdfr_analysis::AnalysisSession;

/// One pinned line per case: every observable `sdfr analyze` derives,
/// rendered with exact rationals (`den` included — no floats anywhere).
const GOLDENS: [&str; 8] = [
    "h.263 decoder|period=Some(Rational { num: 288684, den: 1 })|gamma_len=1190|tokens=3\
     |makespan=326219|bperiod=Rational { num: 288684, den: 1 }|btokens=[(1,0)]|bchannels=[1]",
    "h.263 encoder|period=Some(Rational { num: 108900, den: 1 })|gamma_len=201|tokens=3\
     |makespan=116600|bperiod=Rational { num: 108900, den: 1 }|btokens=[(1,0)]|bchannels=[1]",
    "modem|period=Some(Rational { num: 22, den: 1 })|gamma_len=48|tokens=13\
     |makespan=22|bperiod=Rational { num: 22, den: 1 }|btokens=[(9,0),(19,0)]|bchannels=[9,19]",
    "mp3 dec. block par.|period=Some(Rational { num: 95550, den: 1 })|gamma_len=911|tokens=3\
     |makespan=97050|bperiod=Rational { num: 95550, den: 1 }|btokens=[(1,0),(2,0)]|bchannels=[1,2]",
    "mp3 dec. granule par.|period=Some(Rational { num: 89700, den: 1 })|gamma_len=27|tokens=3\
     |makespan=91200|bperiod=Rational { num: 89700, den: 1 }|btokens=[(1,0),(2,0)]|bchannels=[1,2]",
    "mp3 playback|period=Some(Rational { num: 20725, den: 1 })|gamma_len=10601|tokens=7\
     |makespan=27408|bperiod=Rational { num: 20725, den: 1 }|btokens=[(5,0)]|bchannels=[5]",
    "sample rate conv.|period=Some(Rational { num: 3234, den: 1 })|gamma_len=612|tokens=6\
     |makespan=3424|bperiod=Rational { num: 3234, den: 1 }|btokens=[(1,0)]|bchannels=[1]",
    "satellite|period=Some(Rational { num: 1800, den: 1 })|gamma_len=4515|tokens=22\
     |makespan=2498|bperiod=Rational { num: 1800, den: 1 }|btokens=[(1,0),(20,0)]|bchannels=[1,20]",
];

/// Renders the full observable surface of one case, in the same format the
/// goldens were dumped with.
fn observe(case: &sdfr_benchmarks::table1::Table1Case) -> String {
    let s = AnalysisSession::new(case.graph.clone());
    let t = s.throughput().expect("Table-1 cases are analysable");
    let sym = s.symbolic().expect("Table-1 cases are analysable");
    let b = s.bottleneck().expect("Table-1 cases are analysable");
    let makespan = s.iteration_makespan().expect("Table-1 cases are simulable");
    let mut line = format!(
        "{}|period={:?}|gamma_len={}|tokens={}|makespan={}",
        case.name,
        t.period(),
        t.repetition_vector().iteration_length(),
        sym.num_tokens(),
        makespan
    );
    match b {
        None => line.push_str("|bottleneck=None"),
        Some(b) => {
            let toks: Vec<String> = b
                .tokens
                .iter()
                .map(|t| format!("({},{})", t.channel.index(), t.position))
                .collect();
            let chans: Vec<String> = b.channels.iter().map(|c| c.index().to_string()).collect();
            line.push_str(&format!(
                "|bperiod={:?}|btokens=[{}]|bchannels=[{}]",
                b.period,
                toks.join(","),
                chans.join(",")
            ));
        }
    }
    line
}

#[test]
fn table1_observables_match_the_pre_kernel_goldens() {
    let cases = sdfr_benchmarks::table1::all();
    assert_eq!(
        cases.len(),
        GOLDENS.len(),
        "a Table-1 case was added or removed; re-pin the goldens deliberately"
    );
    for (case, golden) in cases.iter().zip(GOLDENS) {
        assert_eq!(
            observe(case),
            golden,
            "{} drifted from its golden",
            case.name
        );
    }
}

//! Random consistent, live SDF graphs for property-based testing.
//!
//! Graphs are *correct by construction*: repetition-vector entries are
//! sampled first and edge rates derived from them (so the balance equations
//! hold), the base topology is a DAG (forward edges never deadlock), and
//! every back edge receives a full iteration's worth of tokens
//! (`d = c · γ(target)`), which guarantees liveness.

use rand::Rng;
use sdfr_graph::{SdfError, SdfGraph};

/// Parameters for the random graph generators.
#[derive(Debug, Clone)]
pub struct RandomSdfConfig {
    /// Minimum number of actors (inclusive).
    pub min_actors: usize,
    /// Maximum number of actors (inclusive).
    pub max_actors: usize,
    /// Maximum repetition-vector entry per actor.
    pub max_gamma: u64,
    /// Maximum execution time per actor.
    pub max_time: i64,
    /// Number of extra forward edges beyond the spanning chain.
    pub extra_forward_edges: usize,
    /// Number of token-carrying back edges (cycles).
    pub back_edges: usize,
    /// Probability (0–100) that an actor gets a serializing self-loop.
    pub self_loop_percent: u32,
    /// Maximum multiplier applied to the minimal balanced rates of an edge
    /// (1 keeps the smallest rates; homogeneous generation requires 1).
    pub max_rate_multiplier: u64,
}

impl Default for RandomSdfConfig {
    fn default() -> Self {
        RandomSdfConfig {
            min_actors: 2,
            max_actors: 8,
            max_gamma: 6,
            max_time: 20,
            extra_forward_edges: 3,
            back_edges: 2,
            self_loop_percent: 40,
            max_rate_multiplier: 2,
        }
    }
}

/// Generates a random consistent, live, possibly multirate SDF graph.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`min_actors < 1` or
/// `min_actors > max_actors`).
pub fn random_live_sdf<R: Rng>(rng: &mut R, cfg: &RandomSdfConfig) -> SdfGraph {
    assert!(cfg.min_actors >= 1 && cfg.min_actors <= cfg.max_actors);
    let n = rng.gen_range(cfg.min_actors..=cfg.max_actors);
    let gamma: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=cfg.max_gamma)).collect();

    let mut b = SdfGraph::builder("random");
    let ids: Vec<_> = (0..n)
        .map(|i| b.actor(format!("r{i}"), rng.gen_range(0..=cfg.max_time)))
        .collect();

    let add_edge =
        |b: &mut sdfr_graph::SdfGraphBuilder, rng: &mut R, u: usize, v: usize, live: bool| {
            let g = gcd(gamma[u], gamma[v]);
            let m = rng.gen_range(1..=cfg.max_rate_multiplier);
            let (p, c) = (gamma[v] / g * m, gamma[u] / g * m);
            let d = if live {
                c * gamma[v] // a full iteration of buffering: never blocks
            } else {
                // Forward edges may carry a little extra pipelining.
                if rng.gen_bool(0.3) {
                    rng.gen_range(0..=2) * c
                } else {
                    0
                }
            };
            b.channel(ids[u], ids[v], p, c, d).expect("valid endpoints");
        };

    // Spanning chain (guarantees weak connectivity).
    for i in 0..n - 1 {
        add_edge(&mut b, rng, i, i + 1, false);
    }
    for _ in 0..cfg.extra_forward_edges {
        if n >= 2 {
            let u = rng.gen_range(0..n - 1);
            let v = rng.gen_range(u + 1..n);
            add_edge(&mut b, rng, u, v, false);
        }
    }
    for _ in 0..cfg.back_edges {
        if n >= 2 {
            let v = rng.gen_range(0..n - 1);
            let u = rng.gen_range(v + 1..n);
            add_edge(&mut b, rng, u, v, true);
        }
    }
    for &id in &ids {
        if rng.gen_range(0..100) < cfg.self_loop_percent {
            let c = rng.gen_range(1..=cfg.max_rate_multiplier.max(1));
            b.channel(id, id, c, c, c).expect("valid");
        }
    }
    b.build().expect("construction is valid")
}

/// Generates a random consistent, live *homogeneous* SDF graph (all rates
/// 1) — the input class of the abstraction machinery.
pub fn random_live_hsdf<R: Rng>(rng: &mut R, cfg: &RandomSdfConfig) -> SdfGraph {
    let mut unit = cfg.clone();
    unit.max_gamma = 1;
    unit.max_rate_multiplier = 1;
    random_live_sdf(rng, &unit)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Checks the generator's guarantees on an instance (used by tests).
///
/// # Errors
///
/// Propagates analysis errors — which would indicate a generator bug.
pub fn validate(g: &SdfGraph) -> Result<(), SdfError> {
    sdfr_graph::liveness::check_live(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_consistent_and_live() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RandomSdfConfig::default();
        for _ in 0..200 {
            let g = random_live_sdf(&mut rng, &cfg);
            validate(&g).unwrap_or_else(|e| panic!("{e}\n{g}"));
        }
    }

    #[test]
    fn homogeneous_generator_is_homogeneous() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandomSdfConfig::default();
        for _ in 0..100 {
            let g = random_live_hsdf(&mut rng, &cfg);
            assert!(g.is_homogeneous());
            validate(&g).unwrap();
        }
    }

    #[test]
    fn respects_size_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomSdfConfig {
            min_actors: 4,
            max_actors: 5,
            ..RandomSdfConfig::default()
        };
        for _ in 0..50 {
            let g = random_live_sdf(&mut rng, &cfg);
            assert!((4..=5).contains(&g.num_actors()));
        }
    }
}

/// Generates a random consistent, live cyclo-static graph: a chain with
/// token-buffered back edges, cycle-level rates derived from sampled
/// repetition entries and split randomly across 1–3 phases per actor.
/// Every actor is serialized by a one-token self-loop so phase order is
/// respected.
pub fn random_live_csdf<R: Rng>(rng: &mut R, cfg: &RandomSdfConfig) -> sdfr_csdf::CsdfGraph {
    assert!(cfg.min_actors >= 1 && cfg.min_actors <= cfg.max_actors);
    let n = rng.gen_range(cfg.min_actors..=cfg.max_actors);
    let gamma: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=cfg.max_gamma)).collect();
    let phases: Vec<usize> = (0..n).map(|_| rng.gen_range(1..=3)).collect();

    let mut b = sdfr_csdf::CsdfGraph::builder("random-csdf");
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let times: Vec<i64> = (0..phases[i])
                .map(|_| rng.gen_range(0..=cfg.max_time))
                .collect();
            b.actor(format!("r{i}"), times)
        })
        .collect();

    // Random split of `total` over `parts` non-negative summands with at
    // least one token somewhere.
    fn split<R: Rng>(rng: &mut R, total: u64, parts: usize) -> Vec<u64> {
        let mut out = vec![0u64; parts];
        for _ in 0..total {
            out[rng.gen_range(0..parts)] += 1;
        }
        out
    }

    let add_edge = |b: &mut sdfr_csdf::CsdfBuilder, rng: &mut R, u: usize, v: usize, live: bool| {
        let g = gcd(gamma[u], gamma[v]);
        // Per-cycle totals balancing γ(u)·P = γ(v)·C, kept at least 1.
        let (p_total, c_total) = (gamma[v] / g, gamma[u] / g);
        let d = if live { c_total * gamma[v] } else { 0 };
        let prod = split(rng, p_total, phases[u]);
        let cons = split(rng, c_total, phases[v]);
        b.channel(ids[u], ids[v], prod, cons, d)
            .expect("totals are at least 1");
    };

    for i in 0..n - 1 {
        add_edge(&mut b, rng, i, i + 1, false);
    }
    for _ in 0..cfg.back_edges {
        if n >= 2 {
            let v = rng.gen_range(0..n - 1);
            let u = rng.gen_range(v + 1..n);
            add_edge(&mut b, rng, u, v, true);
        }
    }
    for (i, &id) in ids.iter().enumerate() {
        let ones = vec![1u64; phases[i]];
        b.channel(id, id, ones.clone(), ones, 1)
            .expect("self-loop patterns are valid");
    }
    b.build().expect("construction is valid")
}

#[cfg(test)]
mod csdf_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn csdf_generator_is_consistent_and_live() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = RandomSdfConfig::default();
        for _ in 0..100 {
            let g = random_live_csdf(&mut rng, &cfg);
            let rep = sdfr_csdf::repetition_vector(&g)
                .unwrap_or_else(|e| panic!("inconsistent: {e}\n{g}"));
            sdfr_csdf::sequential_schedule(&g, &rep)
                .unwrap_or_else(|e| panic!("deadlock: {e}\n{g}"));
        }
    }
}

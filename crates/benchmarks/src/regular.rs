//! The paper's parametric regular graphs: the Fig. 1(a) family and the
//! Fig. 5 NoC prefetch model.

use sdfr_graph::{SdfError, SdfGraph};
use sdfr_maxplus::Rational;

/// The regular HSDF graph of the paper's Fig. 1(a), generalized to `n`
/// copies of the `A` actor (and `n − 2` copies of `B`), together with the
/// closed-form performance numbers of Sec. 4.1.
///
/// Structure (all rates 1):
///
/// - chain `A1 → A2 → … → An` with a wrap-around edge `An → A1` carrying
///   one token,
/// - chain `B1 → … → B(n−2)` (no wrap-around),
/// - cross edges `Ai → Bi`,
/// - feedback `Bi → A(i+2)`.
///
/// Execution times: `A1, A2 = 2`, `A(n−1), An = 3`, the middle `A`s 5, all
/// `B`s 4 — matching the paper's instance at `n = 6`, where one execution
/// takes 23 time units.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The graph.
    pub graph: SdfGraph,
    /// The number of `A` copies.
    pub n: u64,
}

impl Figure1 {
    /// Builds the family member with `n` copies of `A`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 5` (the closed forms of Sec. 4.1 need the full
    /// 2/5/3 time pattern).
    pub fn new(n: u64) -> Self {
        assert!(n >= 5, "the Fig. 1 family is defined for n >= 5");
        let mut b = SdfGraph::builder(format!("figure1(n={n})"));
        let time_a = |i: u64| -> i64 {
            if i <= 1 {
                2
            } else if i >= n - 2 {
                3
            } else {
                5
            }
        };
        let aa: Vec<_> = (0..n)
            .map(|i| b.actor(format!("A{}", i + 1), time_a(i)))
            .collect();
        let bb: Vec<_> = (0..n - 2)
            .map(|i| b.actor(format!("B{}", i + 1), 4))
            .collect();
        for i in 0..(n - 1) as usize {
            b.channel(aa[i], aa[i + 1], 1, 1, 0).expect("valid");
        }
        b.channel(aa[(n - 1) as usize], aa[0], 1, 1, 1)
            .expect("valid");
        for i in 0..(n - 3) as usize {
            b.channel(bb[i], bb[i + 1], 1, 1, 0).expect("valid");
        }
        for i in 0..(n - 2) as usize {
            b.channel(aa[i], bb[i], 1, 1, 0).expect("valid");
            b.channel(bb[i], aa[i + 2], 1, 1, 0).expect("valid");
        }
        Figure1 {
            graph: b.build().expect("construction is valid"),
            n,
        }
    }

    /// The exact iteration period, `5n − 7` (Sec. 4.1: one execution of the
    /// `n = 6` instance takes 23 time units).
    pub fn exact_period(&self) -> Rational {
        Rational::from(5 * self.n as i64 - 7)
    }

    /// The conservative period estimate from the abstract graph, `5n`
    /// (Sec. 4.1: the abstraction estimates the throughput as `1/(5n)`).
    pub fn abstract_period_estimate(&self) -> Rational {
        Rational::from(5 * self.n as i64)
    }

    /// The relative error of the conservative estimate,
    /// `(5n − (5n−7)) / (5n−7)` — vanishing as `n` grows.
    pub fn relative_error(&self) -> Rational {
        (self.abstract_period_estimate() - self.exact_period()) / self.exact_period()
    }
}

/// The remote-memory-access model of the paper's Fig. 5 (Sec. 7): a
/// block-based computation pipeline whose data is prefetched over a
/// network-on-chip, with `blocks` computations per video frame (1584 in the
/// paper's case study).
///
/// Five per-block stages, each a group of `blocks` homogeneous actors:
/// request generation `req_i` (2), communication assists `ca_in_i` and
/// `ca_out_i` (1 each) on either side of the NoC, the remote memory `mem_i` (4), and
/// the computation `cmp_i` (10). Chains inside each group order the blocks;
/// the computation chain wraps with one token (frame-by-frame operation)
/// and requests run two blocks ahead (`cmp_i → req_{i+2}`, wrap with two
/// tokens).
///
/// The critical cycle is the computation chain, so the iteration period is
/// exactly `10 · blocks` — and the abstraction (group per stage) yields the
/// *same* throughput, the headline of the paper's case study.
pub fn prefetch_model(blocks: u64) -> SdfGraph {
    assert!(blocks >= 3, "the prefetch model needs at least 3 blocks");
    let n = blocks as usize;
    let mut b = SdfGraph::builder(format!("prefetch(blocks={blocks})"));
    let stage_names = ["req", "ca_in", "mem", "ca_out", "cmp"];
    let stage_times = [2, 1, 4, 1, 10];
    let mut stage_ids = Vec::new();
    for (name, time) in stage_names.iter().zip(stage_times) {
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("{name}{}", i + 1), time))
            .collect();
        stage_ids.push(ids);
    }
    // Pipelines block-wise through the five stages.
    for stages in stage_ids.windows(2) {
        for (&src, &dst) in stages[0].iter().zip(&stages[1]) {
            b.channel(src, dst, 1, 1, 0).expect("valid");
        }
    }
    // In-group chains: computations strictly ordered with a frame wrap;
    // requests run two blocks ahead of the computations.
    let (req, cmp) = (&stage_ids[0], &stage_ids[4]);
    for i in 0..n - 1 {
        b.channel(cmp[i], cmp[i + 1], 1, 1, 0).expect("valid");
    }
    b.channel(cmp[n - 1], cmp[0], 1, 1, 1).expect("valid");
    for i in 0..n - 2 {
        b.channel(cmp[i], req[i + 2], 1, 1, 0).expect("valid");
    }
    b.channel(cmp[n - 2], req[0], 1, 1, 2).expect("valid");
    b.channel(cmp[n - 1], req[1], 1, 1, 2).expect("valid");
    b.build().expect("construction is valid")
}

/// The exact iteration period of [`prefetch_model`]: `10 · blocks`.
pub fn prefetch_exact_period(blocks: u64) -> Rational {
    Rational::from(10 * blocks as i64)
}

/// Convenience: checks consistency and liveness of a regular instance.
///
/// # Errors
///
/// Propagates graph analysis errors.
pub fn validate(g: &SdfGraph) -> Result<(), SdfError> {
    sdfr_graph::liveness::check_live(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;

    #[test]
    fn figure1_n6_matches_paper_numbers() {
        let f = Figure1::new(6);
        assert_eq!(f.graph.num_actors(), 10); // 6 A's + 4 B's
        let t = throughput(&f.graph).unwrap();
        assert_eq!(t.period(), Some(Rational::from(23)));
        assert_eq!(f.exact_period(), Rational::from(23));
        assert_eq!(f.abstract_period_estimate(), Rational::from(30));
    }

    #[test]
    fn figure1_period_formula_holds_for_family() {
        for n in [5u64, 6, 7, 10, 16, 33] {
            let f = Figure1::new(n);
            let t = throughput(&f.graph).unwrap();
            assert_eq!(t.period(), Some(f.exact_period()), "n = {n}");
        }
    }

    #[test]
    fn figure1_relative_error_decreases() {
        let e6 = Figure1::new(6).relative_error();
        let e60 = Figure1::new(60).relative_error();
        assert!(e60 < e6);
        assert_eq!(e6, Rational::new(7, 23));
    }

    #[test]
    #[should_panic(expected = "n >= 5")]
    fn figure1_small_n_rejected() {
        let _ = Figure1::new(4);
    }

    #[test]
    fn prefetch_period_is_exact() {
        for blocks in [3u64, 8, 24] {
            let g = prefetch_model(blocks);
            validate(&g).unwrap();
            let t = throughput(&g).unwrap();
            assert_eq!(
                t.period(),
                Some(prefetch_exact_period(blocks)),
                "blocks = {blocks}"
            );
        }
    }

    #[test]
    fn prefetch_structure() {
        let g = prefetch_model(5);
        assert_eq!(g.num_actors(), 25);
        assert_eq!(g.total_initial_tokens(), 1 + 2 + 2);
        assert!(g.is_homogeneous());
    }
}

//! The eight application graphs of the paper's Table 1.
//!
//! Each constructor documents the repetition vector (which determines the
//! "traditional conversion" actor count exactly) and the initial-token
//! placement (which determines the size of the novel conversion). Execution
//! times are representative clock-cycle budgets in the style of the SDF3
//! models; they do not affect either conversion's size.

use sdfr_graph::{SdfError, SdfGraph};

/// One Table-1 test case: the graph plus the paper's published numbers.
#[derive(Debug, Clone)]
pub struct Table1Case {
    /// Display name (as in the paper's table).
    pub name: &'static str,
    /// The benchmark graph.
    pub graph: SdfGraph,
    /// Actors of the traditional conversion as reported by the paper
    /// (equal to `Σγ`, which our reconstruction matches exactly).
    pub paper_traditional_actors: u64,
    /// Actors of the new conversion as reported by the paper (our
    /// reconstruction matches the order of magnitude; see `EXPERIMENTS.md`).
    pub paper_new_actors: u64,
}

/// All eight test cases, in the paper's row order.
pub fn all() -> Vec<Table1Case> {
    vec![
        Table1Case {
            name: "h.263 decoder",
            graph: h263_decoder(),
            paper_traditional_actors: 1190,
            paper_new_actors: 10,
        },
        Table1Case {
            name: "h.263 encoder",
            graph: h263_encoder(),
            paper_traditional_actors: 201,
            paper_new_actors: 11,
        },
        Table1Case {
            name: "modem",
            graph: modem(),
            paper_traditional_actors: 48,
            paper_new_actors: 210,
        },
        Table1Case {
            name: "mp3 dec. block par.",
            graph: mp3_decoder_block_parallel(),
            paper_traditional_actors: 911,
            paper_new_actors: 8,
        },
        Table1Case {
            name: "mp3 dec. granule par.",
            graph: mp3_decoder_granule_parallel(),
            paper_traditional_actors: 27,
            paper_new_actors: 8,
        },
        Table1Case {
            name: "mp3 playback",
            graph: mp3_playback(),
            paper_traditional_actors: 10601,
            paper_new_actors: 38,
        },
        Table1Case {
            name: "sample rate conv.",
            graph: samplerate(),
            paper_traditional_actors: 612,
            paper_new_actors: 31,
        },
        Table1Case {
            name: "satellite",
            graph: satellite(),
            paper_traditional_actors: 4515,
            paper_new_actors: 217,
        },
    ]
}

/// Builds a linear chain with the given `(name, execution time, γ,
/// self-loop)` stages; consecutive rates are derived from the repetition
/// values (`p = γ_next/g`, `c = γ_cur/g`).
fn chain(name: &str, stages: &[(&str, i64, u64, bool)]) -> SdfGraph {
    let mut b = SdfGraph::builder(name);
    let ids: Vec<_> = stages
        .iter()
        .map(|(n, t, _, _)| b.actor(n.to_string(), *t))
        .collect();
    for (i, &(_, _, _, self_loop)) in stages.iter().enumerate() {
        if self_loop {
            b.channel(ids[i], ids[i], 1, 1, 1)
                .expect("self-loop endpoints valid");
        }
    }
    for w in stages.windows(2).zip(0..) {
        let (pair, i) = w;
        let (ga, gb) = (pair[0].2, pair[1].2);
        let g = gcd(ga, gb);
        b.channel(ids[i], ids[i + 1], gb / g, ga / g, 0)
            .expect("chain endpoints valid");
    }
    b.build().expect("chain construction is valid")
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// H.263 decoder: `γ = (1, 594, 594, 1)` over VLD → IQ → IDCT → MC for a
/// QCIF frame of 594 blocks (Σγ = 1190). Self-loops (no auto-concurrency)
/// on VLD, IDCT and MC give 3 initial tokens.
pub fn h263_decoder() -> SdfGraph {
    chain(
        "h.263 decoder",
        &[
            ("vld", 26018, 1, true),
            ("iq", 559, 594, false),
            ("idct", 486, 594, true),
            ("mc", 10958, 1, true),
        ],
    )
}

/// H.263 encoder: `γ = (1, 99, 99, 1, 1)` over Camera → ME → DCTQ → VLC →
/// TX for 99 macroblocks (Σγ = 201), self-loops on Camera, DCTQ and TX.
pub fn h263_encoder() -> SdfGraph {
    chain(
        "h.263 encoder",
        &[
            ("camera", 1000, 1, true),
            ("me", 2500, 99, false),
            ("dctq", 1100, 99, true),
            ("vlc", 2900, 1, false),
            ("tx", 1300, 1, true),
        ],
    )
}

/// Modem: 16 actors, Σγ = 48, with a token-rich synchronisation hub — the
/// one case where the new conversion is *larger* than the traditional one
/// (Table 1, ratio 0.23): a hub actor synchronises 13 token-carrying
/// feedback loops every iteration, making the max-plus matrix dense
/// (`N = 13` → about `N(N+2)` actors), while Σγ is only 48.
pub fn modem() -> SdfGraph {
    let mut b = SdfGraph::builder("modem");
    let hub = b.actor("hub", 16);
    let spokes: Vec<_> = (0..13)
        .map(|i| b.actor(format!("flt{i}"), 2 + (i % 5)))
        .collect();
    for &s in &spokes {
        b.channel(hub, s, 1, 1, 0).expect("valid");
        b.channel(s, hub, 1, 1, 1).expect("valid");
    }
    // The baud-rate side: 17 symbol-level firings per iteration, twice.
    let eq = b.actor("equalizer", 3);
    let dec = b.actor("decoder", 2);
    b.channel(hub, eq, 17, 1, 0).expect("valid");
    b.channel(eq, dec, 1, 1, 0).expect("valid");
    b.build().expect("modem construction is valid")
}

/// MP3 decoder, block-parallel: a dispatcher feeding two parallel block
/// pipelines, `γ = (1, 455, 455)`, Σγ = 911; self-loops everywhere give
/// `N = 3` and a novel conversion of ~8 actors.
pub fn mp3_decoder_block_parallel() -> SdfGraph {
    parallel_pair("mp3 dec. block par.", 455, 210)
}

/// MP3 decoder, granule-parallel: same shape at granule granularity,
/// `γ = (1, 13, 13)`, Σγ = 27.
pub fn mp3_decoder_granule_parallel() -> SdfGraph {
    parallel_pair("mp3 dec. granule par.", 13, 6900)
}

/// Dispatcher feeding two parallel workers of `k` firings each, all three
/// actors self-looped.
fn parallel_pair(name: &str, k: u64, worker_time: i64) -> SdfGraph {
    let mut b = SdfGraph::builder(name);
    let src = b.actor("huffman", 1500);
    let w1 = b.actor("synth1", worker_time);
    let w2 = b.actor("synth2", worker_time);
    for a in [src, w1, w2] {
        b.channel(a, a, 1, 1, 1).expect("valid");
    }
    b.channel(src, w1, k, 1, 0).expect("valid");
    b.channel(src, w2, k, 1, 0).expect("valid");
    b.build().expect("construction is valid")
}

/// MP3 playback: decoder → sample-rate conversion → DAC,
/// `γ = (1, 2, 4, 1152, 1152, 4145, 4145)`, Σγ = 10601 (the paper's
/// largest case); self-loops on every stage.
pub fn mp3_playback() -> SdfGraph {
    chain(
        "mp3 playback",
        &[
            ("mp3", 3800, 1, true),
            ("granule", 1900, 2, true),
            ("block", 950, 4, true),
            ("sample", 12, 1152, true),
            ("src", 16, 1152, true),
            ("resample", 5, 4145, true),
            ("dac", 4, 4145, true),
        ],
    )
}

/// CD-to-DAT sample-rate converter: the classical 44.1 kHz → 48 kHz chain,
/// `γ = (147, 147, 98, 28, 32, 160)`, Σγ = 612; self-loops on all stages
/// give `N = 6` and a novel conversion of 31 actors — matching the paper
/// exactly.
pub fn samplerate() -> SdfGraph {
    chain(
        "sample rate conv.",
        &[
            ("cd", 10, 147, true),
            ("fir1", 22, 147, true),
            ("up23", 16, 98, true),
            ("up27", 26, 28, true),
            ("up87", 18, 32, true),
            ("dat", 12, 160, true),
        ],
    )
}

/// Satellite receiver (Ritz et al.): two parallel filter chains (I/Q
/// channels, γ summing to 2252 each) merging into a matched filter
/// (γ = 10) and a Viterbi decoder (γ = 1): 22 actors, Σγ = 4515;
/// self-loops on every actor.
pub fn satellite() -> SdfGraph {
    let mut b = SdfGraph::builder("satellite");
    let branch_gammas: [u64; 10] = [600, 600, 300, 300, 200, 100, 75, 50, 15, 12];
    let branch_times: [i64; 10] = [2, 3, 5, 5, 8, 12, 14, 20, 60, 90];
    let mut last = Vec::new();
    for ch in 0..2 {
        let ids: Vec<_> = (0..10)
            .map(|i| b.actor(format!("chain{ch}_{i}"), branch_times[i]))
            .collect();
        for &a in &ids {
            b.channel(a, a, 1, 1, 1).expect("valid");
        }
        for i in 0..9 {
            let (ga, gb) = (branch_gammas[i], branch_gammas[i + 1]);
            let g = gcd(ga, gb);
            b.channel(ids[i], ids[i + 1], gb / g, ga / g, 0)
                .expect("valid");
        }
        last.push(ids[9]);
    }
    let matched = b.actor("matched_filter", 120);
    let viterbi = b.actor("viterbi", 330);
    for a in [matched, viterbi] {
        b.channel(a, a, 1, 1, 1).expect("valid");
    }
    for &l in &last {
        // Branch output (γ = 12) into the matched filter (γ = 10).
        b.channel(l, matched, 5, 6, 0).expect("valid");
    }
    b.channel(matched, viterbi, 1, 10, 0).expect("valid");
    b.build().expect("satellite construction is valid")
}

/// Validates the structural invariants of a case: consistency, liveness,
/// and the exact `Σγ` of the paper.
///
/// # Errors
///
/// Propagates graph analysis errors.
pub fn validate(case: &Table1Case) -> Result<(), SdfError> {
    let gamma = sdfr_graph::repetition::repetition_vector(&case.graph)?;
    assert_eq!(
        gamma.iteration_length(),
        case.paper_traditional_actors,
        "{}: Σγ must match the paper's traditional conversion size",
        case.name
    );
    sdfr_graph::liveness::check_live(&case.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_graph::repetition::repetition_vector;

    #[test]
    fn all_cases_consistent_live_and_sized() {
        for case in all() {
            validate(&case).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        }
    }

    #[test]
    fn repetition_vectors() {
        let g = h263_decoder();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma.iteration_length(), 1190);
        let g = h263_encoder();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 201);
        let g = modem();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 48);
        let g = mp3_decoder_block_parallel();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 911);
        let g = mp3_decoder_granule_parallel();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 27);
        let g = mp3_playback();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 10601);
        let g = samplerate();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 612);
        let g = satellite();
        assert_eq!(repetition_vector(&g).unwrap().iteration_length(), 4515);
    }

    #[test]
    fn samplerate_gamma_is_the_published_vector() {
        let g = samplerate();
        let gamma = repetition_vector(&g).unwrap();
        assert_eq!(gamma.as_slice(), &[147, 147, 98, 28, 32, 160]);
    }

    #[test]
    fn modem_has_many_tokens_relative_to_size() {
        // The inversion driver: tokens ≈ Σγ/4 with a dense coupling.
        let g = modem();
        assert_eq!(g.total_initial_tokens(), 13);
        assert_eq!(g.num_actors(), 16);
    }

    #[test]
    fn initial_token_counts() {
        assert_eq!(h263_decoder().total_initial_tokens(), 3);
        assert_eq!(h263_encoder().total_initial_tokens(), 3);
        assert_eq!(mp3_decoder_block_parallel().total_initial_tokens(), 3);
        assert_eq!(mp3_playback().total_initial_tokens(), 7);
        assert_eq!(samplerate().total_initial_tokens(), 6);
        assert_eq!(satellite().total_initial_tokens(), 22);
    }
}

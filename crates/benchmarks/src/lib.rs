//! Benchmark SDF graphs.
//!
//! Reconstructions of the application graphs used in the paper's Table 1
//! (originally from the SDF3 benchmark set [Stuijk et al.]), plus the
//! parametric regular graphs of the paper's Figs. 1 and 5 and a random
//! consistent-graph generator for property testing.
//!
//! **Fidelity note.** The original SDF3 XML files are not redistributed
//! here; each graph is reconstructed from its published repetition vector —
//! which *fully determines* the "traditional conversion" column of Table 1
//! (`Σγ` actors) — together with an initial-token placement (self-loops
//! modelling absent auto-concurrency, as in SDF3 application models) chosen
//! to match the published structure class. The "new conversion" column
//! therefore reproduces the paper's *shape* (who wins, by what order of
//! magnitude, and the modem inversion) rather than each exact count; see
//! `EXPERIMENTS.md` for the measured-vs-paper table.
//!
//! # Example
//!
//! ```
//! use sdfr_benchmarks::table1;
//!
//! let cases = table1::all();
//! assert_eq!(cases.len(), 8);
//! let h263 = &cases[0];
//! assert_eq!(h263.name, "h.263 decoder");
//! assert_eq!(h263.paper_traditional_actors, 1190);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod random;
pub mod regular;
pub mod table1;

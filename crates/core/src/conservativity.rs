//! Mechanical verification of the conservativity argument (paper, Sec. 5).
//!
//! Proposition 1 of the paper gives a refinement principle: if graph
//! `(A, D, T)` embeds into `(B, E, U)` via an injective actor mapping σ such
//! that execution times only grow (`T(a) ≤ U(σ(a))`, Prop. 3) and every
//! dependency edge has a counterpart with at most as many initial tokens
//! (Prop. 4), then the throughput of `(A, D, T)` is at least that of
//! `(B, E, U)`.
//!
//! [`verify_abstraction`] instantiates this for an abstraction: it unfolds
//! the abstract graph `N` times (Def. 5), builds the mapping
//! `σ(a) = α(a)_{I(a)}`, and checks the premises edge by edge. Together with
//! the proofs in the paper this certifies that the abstract graph's
//! throughput (divided by `N`) conservatively bounds the original's
//! (Theorem 1) — and [`conservative_period_bound`] computes that bound.

use sdfr_analysis::throughput::throughput;
use sdfr_graph::{ActorId, ChannelId, SdfGraph};
use sdfr_maxplus::Rational;

use crate::abstraction::{abstract_graph, abstract_graph_unpruned, Abstraction};
use crate::unfold::{unfold, unfolded_actor_name};
use crate::CoreError;

/// A violated premise of Prop. 1.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RefinementViolation {
    /// σ maps two actors of the refined graph to the same actor.
    NotInjective {
        /// The shared image actor (in the bigger graph).
        image: ActorId,
    },
    /// An actor is faster in the bigger graph (`T(a) > U(σ(a))`).
    ExecutionTime {
        /// Actor in the refined (smaller/faster) graph.
        fast: ActorId,
        /// Its image in the bigger graph.
        slow: ActorId,
    },
    /// An edge of the refined graph has no counterpart
    /// `(σ(a), σ(b), p, c, d' ≤ d)` in the bigger graph.
    MissingEdge {
        /// The unmatched channel of the refined graph.
        channel: ChannelId,
    },
}

impl std::fmt::Display for RefinementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefinementViolation::NotInjective { image } => {
                write!(f, "mapping is not injective at image actor {image}")
            }
            RefinementViolation::ExecutionTime { fast, slow } => write!(
                f,
                "execution time of {fast} exceeds that of its image {slow}"
            ),
            RefinementViolation::MissingEdge { channel } => write!(
                f,
                "channel {channel} has no conservative counterpart in the refining graph"
            ),
        }
    }
}

impl std::error::Error for RefinementViolation {}

/// Checks the premises of Prop. 1 for `fast` embedded in `slow` via
/// `sigma` (indexed by the actor index of `fast`).
///
/// On success, the throughput of `fast` is at least that of `slow` — i.e.
/// `slow` is a *conservative* model of `fast`.
///
/// # Errors
///
/// Returns the first discovered [`RefinementViolation`].
///
/// # Panics
///
/// Panics if `sigma` is shorter than the number of actors of `fast` or
/// contains ids not in `slow`.
pub fn check_refinement(
    fast: &SdfGraph,
    slow: &SdfGraph,
    sigma: &[ActorId],
) -> Result<(), RefinementViolation> {
    assert!(
        sigma.len() >= fast.num_actors(),
        "sigma must cover every actor of the refined graph"
    );
    // Injectivity.
    let mut hit = vec![false; slow.num_actors()];
    for a in fast.actor_ids() {
        let img = sigma[a.index()];
        if hit[img.index()] {
            return Err(RefinementViolation::NotInjective { image: img });
        }
        hit[img.index()] = true;
    }
    // Execution times only grow (Prop. 3).
    for (a, actor) in fast.actors() {
        let img = sigma[a.index()];
        if actor.execution_time() > slow.actor(img).execution_time() {
            return Err(RefinementViolation::ExecutionTime { fast: a, slow: img });
        }
    }
    // Every edge has a counterpart with at most as many tokens (Prop. 4).
    for (cid, ch) in fast.channels() {
        let src = sigma[ch.source().index()];
        let dst = sigma[ch.target().index()];
        let matched = slow.outgoing(src).iter().any(|&other| {
            let o = slow.channel(other);
            o.target() == dst
                && o.production() == ch.production()
                && o.consumption() == ch.consumption()
                && o.initial_tokens() <= ch.initial_tokens()
        });
        if !matched {
            return Err(RefinementViolation::MissingEdge { channel: cid });
        }
    }
    Ok(())
}

/// Mechanically verifies that `abs` is conservative for `g`: builds the
/// abstract graph (unpruned Def. 4), unfolds it `N` times, constructs
/// `σ(a) = α(a)_{I(a)}`, and checks Prop. 1's premises.
///
/// # Errors
///
/// - [`CoreError`] if the abstract graph cannot be built,
/// - the [`RefinementViolation`] (boxed in
///   [`CoreError::AutoAbstractionFailed`]-style reporting is avoided; the
///   violation is returned in the `Ok(Err(..))` layer) if a premise fails —
///   which the paper proves cannot happen for a valid abstraction, so
///   hitting it indicates a bug and is surfaced for property testing.
pub fn verify_abstraction(
    g: &SdfGraph,
    abs: &Abstraction,
) -> Result<Result<(), RefinementViolation>, CoreError> {
    let ag = abstract_graph_unpruned(g, abs)?;
    let n = abs.cycle_length();
    let unfolded = unfold(&ag, n);
    let sigma: Vec<ActorId> = g
        .actor_ids()
        .map(|a| {
            let name = unfolded_actor_name(abs.group_of(a), abs.index_of(a));
            unfolded
                .actor_by_name(&name)
                .expect("unfolding contains every (group, index) copy")
        })
        .collect();
    Ok(check_refinement(g, &unfolded, &sigma))
}

/// The conservative iteration-period bound from Theorem 1: `N · λ'`, where
/// λ' is the iteration period of the (pruned) abstract graph.
///
/// The original graph's period is guaranteed to be at most this bound; the
/// original throughput of any actor `a` is at least `1 / (N·λ')` (for
/// homogeneous graphs, where `γ(a) = 1`).
///
/// Returns `None` if the abstract graph has no recurrent constraint.
///
/// # Errors
///
/// Propagates graph-construction and analysis errors.
pub fn conservative_period_bound(
    g: &SdfGraph,
    abs: &Abstraction,
) -> Result<Option<Rational>, CoreError> {
    let ag = abstract_graph(g, abs)?;
    let t = throughput(&ag).map_err(CoreError::from)?;
    Ok(t.period()
        .map(|l| l * Rational::from(abs.cycle_length() as i64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::Abstraction;

    /// A ring of `k` actors with one token, grouped into a single abstract
    /// actor.
    fn ring(k: usize, times: &[i64]) -> (SdfGraph, Vec<ActorId>) {
        let mut b = SdfGraph::builder("ring");
        let ids: Vec<_> = (0..k)
            .map(|i| b.actor(format!("r{i}"), times[i % times.len()]))
            .collect();
        for i in 0..k {
            let d = u64::from(i + 1 == k);
            b.channel(ids[i], ids[(i + 1) % k], 1, 1, d).unwrap();
        }
        (b.build().unwrap(), ids)
    }

    fn ring_abstraction(g: &SdfGraph, ids: &[ActorId]) -> Abstraction {
        let mut builder = Abstraction::builder(g);
        for (i, &a) in ids.iter().enumerate() {
            builder.assign(a, "R", i as u64);
        }
        builder.build().unwrap()
    }

    #[test]
    fn ring_abstraction_verifies() {
        let (g, ids) = ring(4, &[2, 5, 3, 1]);
        let abs = ring_abstraction(&g, &ids);
        assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
    }

    #[test]
    fn ring_period_bound_is_conservative() {
        let (g, ids) = ring(4, &[2, 5, 3, 1]);
        let abs = ring_abstraction(&g, &ids);
        let bound = conservative_period_bound(&g, &abs).unwrap().unwrap();
        let actual = throughput(&g).unwrap().period().unwrap();
        // Original: cycle of 11 time units; abstract: max time 5 × N 4 = 20.
        assert_eq!(actual, Rational::new(11, 1));
        assert_eq!(bound, Rational::new(20, 1));
        assert!(actual <= bound);
    }

    #[test]
    fn refinement_catches_execution_time_violation() {
        let mut b = SdfGraph::builder("fast");
        let x = b.actor("x", 5);
        b.channel(x, x, 1, 1, 1).unwrap();
        let fast = b.build().unwrap();
        let mut b = SdfGraph::builder("slow");
        let y = b.actor("y", 3); // slower graph actor is FASTER: violation
        b.channel(y, y, 1, 1, 1).unwrap();
        let slow = b.build().unwrap();
        assert_eq!(
            check_refinement(&fast, &slow, &[y]),
            Err(RefinementViolation::ExecutionTime { fast: x, slow: y })
        );
    }

    #[test]
    fn refinement_catches_missing_edge() {
        let mut b = SdfGraph::builder("fast");
        let x = b.actor("x", 1);
        let ch = b.channel(x, x, 1, 1, 2).unwrap();
        let fast = b.build().unwrap();
        // Image graph has the edge but with MORE tokens: not conservative.
        let mut b = SdfGraph::builder("slow");
        let y = b.actor("y", 1);
        b.channel(y, y, 1, 1, 3).unwrap();
        let slow = b.build().unwrap();
        assert_eq!(
            check_refinement(&fast, &slow, &[y]),
            Err(RefinementViolation::MissingEdge { channel: ch })
        );
    }

    #[test]
    fn refinement_catches_non_injective_sigma() {
        let mut b = SdfGraph::builder("fast");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 1).unwrap();
        let fast = b.build().unwrap();
        let mut b = SdfGraph::builder("slow");
        let z = b.actor("z", 1);
        b.channel(z, z, 1, 1, 1).unwrap();
        let slow = b.build().unwrap();
        assert_eq!(
            check_refinement(&fast, &slow, &[z, z]),
            Err(RefinementViolation::NotInjective { image: z })
        );
    }

    #[test]
    fn refinement_accepts_fewer_tokens_and_slower_actors() {
        let mut b = SdfGraph::builder("fast");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 2).unwrap();
        let fast = b.build().unwrap();
        let mut b = SdfGraph::builder("slow");
        let y = b.actor("y", 4);
        b.channel(y, y, 1, 1, 1).unwrap();
        let slow = b.build().unwrap();
        assert_eq!(check_refinement(&fast, &slow, &[y]), Ok(()));
        // And the throughput relation indeed holds.
        let tf = throughput(&fast).unwrap().period().unwrap();
        let ts = throughput(&slow).unwrap().period().unwrap();
        assert!(tf <= ts);
    }

    #[test]
    fn two_group_abstraction_verifies_and_bounds() {
        // Two interleaved rings sharing tokens, grouped A/B, mirroring the
        // paper's Fig. 2 example shape.
        let mut b = SdfGraph::builder("g");
        let a1 = b.actor("A1", 2);
        let a2 = b.actor("A2", 4);
        let b1 = b.actor("B1", 3);
        let b2 = b.actor("B2", 1);
        b.channel(a1, a2, 1, 1, 0).unwrap();
        b.channel(a2, a1, 1, 1, 1).unwrap();
        b.channel(a1, b1, 1, 1, 0).unwrap();
        b.channel(a2, b2, 1, 1, 0).unwrap();
        b.channel(b1, b2, 1, 1, 0).unwrap();
        b.channel(b2, b1, 1, 1, 1).unwrap();
        b.channel(b2, a1, 1, 1, 2).unwrap();
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder
            .assign(a1, "A", 0)
            .assign(a2, "A", 1)
            .assign(b1, "B", 0)
            .assign(b2, "B", 1);
        let abs = builder.build().unwrap();
        assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
        let bound = conservative_period_bound(&g, &abs).unwrap().unwrap();
        let actual = throughput(&g).unwrap().period().unwrap();
        assert!(actual <= bound, "{actual} <= {bound}");
    }
}

//! A-priori conversion selection (paper, end of Sec. 7).
//!
//! "Because the size of the traditional HSDF is exactly predictable and a
//! bound on the size of the new method can be estimated from the number of
//! initial tokens, it is possible to assess beforehand when this might
//! occur." — this module implements that assessment: the traditional
//! conversion has exactly `Σγ` actors, and the novel conversion at most
//! `N(N+2)`, both computable without running either conversion.

use sdfr_analysis::AnalysisSession;
use sdfr_graph::repetition::repetition_vector;
use sdfr_graph::{SdfError, SdfGraph};

/// Which conversion to use for a given graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionChoice {
    /// The classical firing expansion (`Σγ` actors) is predicted smaller —
    /// the modem-type case with many initial tokens.
    Traditional,
    /// The compact max-plus conversion (`≤ N(N+2)` actors) is predicted
    /// smaller — the common case.
    Novel,
}

/// Predicted sizes, computed without running a conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizePrediction {
    /// Exact actor count of the traditional conversion: `Σγ`.
    pub traditional_actors: u64,
    /// Worst-case actor count of the novel conversion: `N(N+2)`.
    pub novel_actor_bound: u64,
    /// The number of initial tokens `N`.
    pub tokens: u64,
}

impl SizePrediction {
    /// The recommended conversion under the worst-case comparison.
    ///
    /// Ties favour [`ConversionChoice::Novel`]: its bound is usually loose
    /// (sparse matrices elide most (de)multiplexors), whereas `Σγ` is
    /// exact.
    pub fn choice(&self) -> ConversionChoice {
        if self.traditional_actors < self.novel_actor_bound {
            ConversionChoice::Traditional
        } else {
            ConversionChoice::Novel
        }
    }
}

/// Predicts both conversion sizes for `g` without converting.
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] if `g` has no repetition vector.
///
/// # Example
///
/// ```
/// use sdfr_core::recommend::{predict_sizes, ConversionChoice};
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 64, 1, 0)?;
/// b.channel(x, x, 1, 1, 1)?;
/// let g = b.build()?;
/// let p = predict_sizes(&g)?;
/// assert_eq!(p.traditional_actors, 65); // γ = (1, 64)
/// assert_eq!(p.novel_actor_bound, 3);   // N = 1
/// assert_eq!(p.choice(), ConversionChoice::Novel);
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn predict_sizes(g: &SdfGraph) -> Result<SizePrediction, SdfError> {
    let gamma = repetition_vector(g)?;
    let tokens = g.total_initial_tokens();
    Ok(SizePrediction {
        traditional_actors: gamma.iteration_length(),
        novel_actor_bound: tokens * (tokens + 2),
        tokens,
    })
}

/// [`predict_sizes`] on an [`AnalysisSession`], reusing its cached
/// repetition vector.
///
/// # Errors
///
/// See [`predict_sizes`].
pub fn predict_sizes_with_session(session: &AnalysisSession) -> Result<SizePrediction, SdfError> {
    let gamma = session.repetition_vector()?;
    let tokens = session.graph().total_initial_tokens();
    Ok(SizePrediction {
        traditional_actors: gamma.iteration_length(),
        novel_actor_bound: tokens * (tokens + 2),
        tokens,
    })
}

/// Runs the conversion recommended by [`predict_sizes`] and returns the
/// choice together with the resulting HSDF graph.
///
/// # Errors
///
/// Propagates conversion errors ([`SdfError::Inconsistent`],
/// [`SdfError::Deadlock`]).
pub fn best_conversion(g: &SdfGraph) -> Result<(ConversionChoice, SdfGraph), SdfError> {
    best_conversion_with_session(&AnalysisSession::new(g.clone()))
}

/// [`best_conversion`] on an [`AnalysisSession`]: the prediction reuses the
/// session's repetition vector, and a novel conversion reuses its symbolic
/// iteration.
///
/// # Errors
///
/// See [`best_conversion`].
pub fn best_conversion_with_session(
    session: &AnalysisSession,
) -> Result<(ConversionChoice, SdfGraph), SdfError> {
    let choice = predict_sizes_with_session(session)?.choice();
    let graph = match choice {
        ConversionChoice::Traditional => crate::traditional::convert_with_session(session)?.graph,
        ConversionChoice::Novel => crate::novel::convert_with_session(session)?.graph,
    };
    Ok((choice, graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommends_novel_for_multirate_chains() {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 147, 1, 0).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        b.channel(y, y, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let p = predict_sizes(&g).unwrap();
        assert_eq!(p.traditional_actors, 148);
        assert_eq!(p.tokens, 2);
        assert_eq!(p.novel_actor_bound, 8);
        assert_eq!(p.choice(), ConversionChoice::Novel);
        let (choice, converted) = best_conversion(&g).unwrap();
        assert_eq!(choice, ConversionChoice::Novel);
        assert!(converted.num_actors() <= 8);
    }

    #[test]
    fn recommends_traditional_for_token_rich_graphs() {
        // The modem shape: small γ, many tokens.
        let mut b = SdfGraph::builder("hubby");
        let hub = b.actor("hub", 1);
        for i in 0..9 {
            let s = b.actor(format!("s{i}"), 1);
            b.channel(hub, s, 1, 1, 0).unwrap();
            b.channel(s, hub, 1, 1, 2).unwrap();
        }
        let g = b.build().unwrap();
        let p = predict_sizes(&g).unwrap();
        assert_eq!(p.traditional_actors, 10);
        assert_eq!(p.tokens, 18);
        assert_eq!(p.choice(), ConversionChoice::Traditional);
        let (choice, converted) = best_conversion(&g).unwrap();
        assert_eq!(choice, ConversionChoice::Traditional);
        assert_eq!(converted.num_actors(), 10);
    }

    #[test]
    fn prediction_matches_table1_directions() {
        for case in sdfr_benchmarks_cases() {
            let p = predict_sizes(&case.1).unwrap();
            // The prediction must never pick a conversion that is *worse*
            // than the alternative's prediction by its own metric.
            match p.choice() {
                ConversionChoice::Traditional => {
                    assert!(p.traditional_actors < p.novel_actor_bound, "{}", case.0)
                }
                ConversionChoice::Novel => {
                    assert!(p.novel_actor_bound <= p.traditional_actors, "{}", case.0)
                }
            }
        }
    }

    /// A few representative shapes (avoiding a dev-dependency cycle on the
    /// benchmarks crate).
    fn sdfr_benchmarks_cases() -> Vec<(&'static str, SdfGraph)> {
        let mut cases = Vec::new();
        let mut b = SdfGraph::builder("updown");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        cases.push(("updown", b.build().unwrap()));

        let mut b = SdfGraph::builder("selfloops");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        b.channel(x, y, 99, 1, 0).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        b.channel(y, y, 1, 1, 1).unwrap();
        cases.push(("selfloops", b.build().unwrap()));
        cases
    }

    #[test]
    fn inconsistent_graph_errors() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert!(predict_sizes(&g).is_err());
        assert!(best_conversion(&g).is_err());
    }
}

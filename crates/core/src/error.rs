//! Errors for the reduction transformations.

use std::error::Error;
use std::fmt;

use sdfr_graph::{ActorId, SdfError};

/// Errors raised by the abstraction and conversion transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A graph-level error (inconsistency, deadlock, …).
    Graph(SdfError),
    /// An actor was not assigned to any abstract actor.
    UnassignedActor {
        /// The unassigned actor.
        actor: ActorId,
    },
    /// Two actors of the same abstraction group share an index, violating
    /// Def. 3 (`α(a1) = α(a2) ⇒ I(a1) ≠ I(a2)`).
    DuplicateIndexInGroup {
        /// Name of the abstract actor (group).
        group: String,
        /// The duplicated index.
        index: u64,
    },
    /// Two actors of the same group have different repetition-vector
    /// entries, violating Def. 3 (`γ(a1) = γ(a2)`).
    UnequalRepetitionInGroup {
        /// Name of the abstract actor (group).
        group: String,
    },
    /// An edge `(a, b, p, c, 0)` runs against the index order, violating
    /// Def. 3 (`I(a) ≤ I(b)` or `d > 0`).
    IndexOrderViolated {
        /// Source actor of the offending edge.
        source: ActorId,
        /// Target actor of the offending edge.
        target: ActorId,
    },
    /// The abstraction machinery requires a homogeneous input graph (the
    /// form in which Def. 4 and the conservativity proof are stated);
    /// convert multirate graphs to HSDF first.
    RequiresHomogeneous,
    /// Automatic abstraction could not derive a grouping (e.g. a zero-delay
    /// cycle, which only occurs in deadlocked graphs).
    AutoAbstractionFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "{e}"),
            CoreError::UnassignedActor { actor } => {
                write!(f, "actor {actor} is not assigned to an abstract actor")
            }
            CoreError::DuplicateIndexInGroup { group, index } => write!(
                f,
                "two actors of group '{group}' share index {index} (Def. 3 requires distinct indices)"
            ),
            CoreError::UnequalRepetitionInGroup { group } => write!(
                f,
                "actors of group '{group}' have different repetition-vector entries"
            ),
            CoreError::IndexOrderViolated { source, target } => write!(
                f,
                "token-free edge {source} -> {target} runs against the index order (Def. 3)"
            ),
            CoreError::RequiresHomogeneous => {
                write!(f, "abstraction requires a homogeneous SDF graph")
            }
            CoreError::AutoAbstractionFailed { reason } => {
                write!(f, "automatic abstraction failed: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for CoreError {
    fn from(e: SdfError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Graph(SdfError::EmptyActorName);
        assert!(e.to_string().contains("non-empty"));
        assert!(e.source().is_some());
        let e = CoreError::DuplicateIndexInGroup {
            group: "A".into(),
            index: 3,
        };
        assert!(e.to_string().contains("'A'"));
        assert!(e.source().is_none());
        let e = CoreError::RequiresHomogeneous;
        assert!(e.to_string().contains("homogeneous"));
        let e = CoreError::UnassignedActor {
            actor: ActorId::from_index(2),
        };
        assert!(e.to_string().contains("a2"));
    }
}

//! Reduction techniques for synchronous dataflow graphs.
//!
//! This crate implements the two contributions of M. Geilen, *"Reduction
//! Techniques for Synchronous Dataflow Graphs"*, DAC 2009:
//!
//! 1. **Conservative abstraction** (paper Sec. 4): group the actors of a
//!    large, regular HSDF graph into a small abstract graph whose throughput
//!    conservatively bounds the original's ([`abstraction`], [`auto`]), with
//!    the soundness machinery of the paper — the `N`-fold unfolding
//!    ([`unfold`], Def. 5) and a mechanical checker of the refinement
//!    premises of Prop. 1 ([`conservativity`]).
//! 2. **A compact SDF→HSDF conversion** (paper Sec. 6, Alg. 1, Fig. 4):
//!    from the symbolic max-plus matrix of one iteration, build an HSDF
//!    graph with at most `N(N+2)` actors over the `N` initial tokens
//!    ([`novel`]), dramatically smaller than the classical expansion
//!    ([`traditional`]) whose size is the repetition-vector sum.
//!
//! Supporting transformations: redundant-edge pruning ([`prune`]),
//! throughput-equivalence validation between a graph and its conversions
//! ([`equivalence`]), and a-priori conversion selection ([`recommend`],
//! the paper's closing Sec. 7 remark).
//!
//! # Example: reproduce a Table-1 style comparison
//!
//! ```
//! use sdfr_core::{novel, traditional};
//! use sdfr_graph::SdfGraph;
//!
//! let mut b = SdfGraph::builder("updown");
//! let x = b.actor("x", 1);
//! let y = b.actor("y", 2);
//! b.channel(x, y, 2, 3, 0)?;
//! b.channel(y, x, 3, 2, 6)?;
//! let g = b.build()?;
//!
//! let trad = traditional::convert(&g)?;
//! let new = novel::convert(&g)?;
//! assert_eq!(trad.graph.num_actors(), 5);          // Σγ = 3 + 2
//! assert!(new.graph.num_actors() <= 6 * (6 + 2));  // N(N+2), N = 6 tokens
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod abstraction;
pub mod auto;
pub mod conservativity;
pub mod degrade;
pub mod equivalence;
pub mod novel;
pub mod prune;
pub mod recommend;
pub mod traditional;
pub mod unfold;

pub use abstraction::{abstract_graph, Abstraction, AbstractionBuilder};
pub use degrade::{
    analyze_with_budget, analyze_with_session, AnalysisOutcome, ConservativeBound, FallbackMethod,
    OutcomeAggregate,
};
pub use error::CoreError;
pub use novel::NovelConversion;
pub use sdfr_analysis::{AnalysisSession, SessionRegistry};
pub use traditional::TraditionalConversion;

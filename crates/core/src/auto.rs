//! Automatic derivation of abstractions for regular graphs.
//!
//! The paper's examples (Figs. 1 and 5) group actors `A1 … A6` into an
//! abstract actor `A` by hand. This module automates the two choices an
//! abstraction requires:
//!
//! - **grouping**: by default, actors whose names differ only in a trailing
//!   number form one group (`A1`, `A2`, … → `A`) — exactly the naming
//!   convention of the regular graphs the technique targets; a custom
//!   grouping function can be supplied instead;
//! - **indexing**: indices are assigned by longest-path layering over the
//!   token-free edges, which guarantees the Def. 3 order condition
//!   (`I(a) ≤ I(b)` for every token-free edge `a → b`) while keeping
//!   indices within each group distinct and as small as possible.

use std::collections::BTreeSet;

use sdfr_graph::{ActorId, SdfGraph};

use crate::abstraction::Abstraction;
use crate::CoreError;

/// Derives an abstraction by grouping actors whose names share a prefix
/// before a trailing number.
///
/// # Errors
///
/// - [`CoreError::AutoAbstractionFailed`] if the token-free subgraph has a
///   cycle (such a graph deadlocks anyway),
/// - validation errors from [`Abstraction::builder`] (e.g.
///   [`CoreError::RequiresHomogeneous`]).
///
/// # Example
///
/// ```
/// use sdfr_core::auto::auto_abstraction;
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("g");
/// let a1 = b.actor("A1", 2);
/// let a2 = b.actor("A2", 5);
/// b.channel(a1, a2, 1, 1, 0)?;
/// b.channel(a2, a1, 1, 1, 1)?;
/// let g = b.build()?;
/// let abs = auto_abstraction(&g)?;
/// assert_eq!(abs.num_groups(), 1);
/// assert_eq!(abs.group_of(a1), "A");
/// assert_eq!(abs.index_of(a2), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn auto_abstraction(g: &SdfGraph) -> Result<Abstraction, CoreError> {
    auto_abstraction_with(g, |name| name_prefix(name).to_string())
}

/// Derives an abstraction with a custom grouping function mapping an actor
/// name to its group name.
///
/// # Errors
///
/// See [`auto_abstraction`].
pub fn auto_abstraction_with(
    g: &SdfGraph,
    group_fn: impl Fn(&str) -> String,
) -> Result<Abstraction, CoreError> {
    let groups: Vec<String> = g.actors().map(|(_, a)| group_fn(a.name())).collect();
    let order = token_free_topological_order(g)?;

    // Longest-path layering with per-group index deduplication.
    let mut index: Vec<u64> = vec![0; g.num_actors()];
    let mut used: std::collections::HashMap<&str, BTreeSet<u64>> = Default::default();
    for &a in &order {
        let mut lower = 0;
        for &cid in g.incoming(a) {
            let ch = g.channel(cid);
            if ch.initial_tokens() == 0 && !ch.is_self_loop() {
                lower = lower.max(index[ch.source().index()]);
            }
        }
        let group_used = used.entry(groups[a.index()].as_str()).or_default();
        let mut candidate = lower;
        while group_used.contains(&candidate) {
            candidate += 1;
        }
        group_used.insert(candidate);
        index[a.index()] = candidate;
    }

    let mut builder = Abstraction::builder(g);
    for a in g.actor_ids() {
        builder.assign(a, groups[a.index()].clone(), index[a.index()]);
    }
    builder.build()
}

/// The group prefix of an actor name: the name with one trailing run of
/// ASCII digits removed (`"A12" → "A"`); names without a trailing number —
/// or consisting only of digits — group by themselves.
pub fn name_prefix(name: &str) -> &str {
    let trimmed = name.trim_end_matches(|c: char| c.is_ascii_digit());
    if trimmed.is_empty() {
        name
    } else {
        trimmed
    }
}

/// Deterministic Kahn topological order over token-free, non-self-loop
/// edges (BTreeSet frontier, so the derived indices are independent of edge
/// insertion order).
fn token_free_topological_order(g: &SdfGraph) -> Result<Vec<ActorId>, CoreError> {
    let n = g.num_actors();
    let mut in_deg = vec![0usize; n];
    for (_, ch) in g.channels() {
        if ch.initial_tokens() == 0 && !ch.is_self_loop() {
            in_deg[ch.target().index()] += 1;
        }
    }
    let mut frontier: BTreeSet<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = frontier.iter().next() {
        frontier.remove(&i);
        let a = ActorId::from_index(i);
        order.push(a);
        for &cid in g.outgoing(a) {
            let ch = g.channel(cid);
            if ch.initial_tokens() == 0 && !ch.is_self_loop() {
                let t = ch.target().index();
                in_deg[t] -= 1;
                if in_deg[t] == 0 {
                    frontier.insert(t);
                }
            }
        }
    }
    if order.len() != n {
        return Err(CoreError::AutoAbstractionFailed {
            reason: "the token-free subgraph has a cycle (the graph deadlocks)".into(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conservativity::{conservative_period_bound, verify_abstraction};
    use sdfr_analysis::throughput::throughput;

    #[test]
    fn name_prefix_rules() {
        assert_eq!(name_prefix("A12"), "A");
        assert_eq!(name_prefix("CA1"), "CA");
        assert_eq!(name_prefix("mem"), "mem");
        assert_eq!(name_prefix("42"), "42");
        assert_eq!(name_prefix("B2b2"), "B2b");
    }

    /// A 2×k regular ladder like the paper's Fig. 1(a): a chain of A's, a
    /// chain of B's, cross edges A_i → B_i and feedback B_i → A_{i+2}.
    fn ladder(k: usize) -> SdfGraph {
        let mut b = SdfGraph::builder("ladder");
        let aa: Vec<_> = (0..k).map(|i| b.actor(format!("A{}", i + 1), 2)).collect();
        let bb: Vec<_> = (0..k).map(|i| b.actor(format!("B{}", i + 1), 4)).collect();
        for i in 0..k - 1 {
            b.channel(aa[i], aa[i + 1], 1, 1, 0).unwrap();
            b.channel(bb[i], bb[i + 1], 1, 1, 0).unwrap();
        }
        b.channel(aa[k - 1], aa[0], 1, 1, 1).unwrap();
        for i in 0..k {
            b.channel(aa[i], bb[i], 1, 1, 0).unwrap();
        }
        for i in 0..k - 2 {
            b.channel(bb[i], aa[i + 2], 1, 1, 2).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ladder_groups_and_indices() {
        let g = ladder(5);
        let abs = auto_abstraction(&g).unwrap();
        assert_eq!(abs.num_groups(), 2);
        assert_eq!(abs.cycle_length(), 5);
        for i in 0..5u64 {
            let a = g.actor_by_name(&format!("A{}", i + 1)).unwrap();
            assert_eq!(abs.group_of(a), "A");
            assert_eq!(abs.index_of(a), i);
            let bb = g.actor_by_name(&format!("B{}", i + 1)).unwrap();
            assert_eq!(abs.group_of(bb), "B");
            assert_eq!(abs.index_of(bb), i);
        }
    }

    #[test]
    fn ladder_abstraction_is_conservative() {
        let g = ladder(6);
        let abs = auto_abstraction(&g).unwrap();
        assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
        let bound = conservative_period_bound(&g, &abs).unwrap().unwrap();
        let actual = throughput(&g).unwrap().period().unwrap();
        assert!(actual <= bound, "{actual} <= {bound}");
    }

    #[test]
    fn zero_delay_cycle_fails_cleanly() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x1", 1);
        let y = b.actor("x2", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            auto_abstraction(&g),
            Err(CoreError::AutoAbstractionFailed { .. })
        ));
    }

    #[test]
    fn custom_grouping_function() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("left", 1);
        let y = b.actor("right", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        // Group everything together regardless of names.
        let abs = auto_abstraction_with(&g, |_| "ALL".to_string()).unwrap();
        assert_eq!(abs.num_groups(), 1);
        assert_eq!(abs.cycle_length(), 2);
    }

    #[test]
    fn index_gaps_allowed_for_unequal_groups() {
        // 3 A's, 1 B attached to A3: B must get index >= I(A3) = 2.
        let mut b = SdfGraph::builder("g");
        let a1 = b.actor("A1", 1);
        let a2 = b.actor("A2", 1);
        let a3 = b.actor("A3", 1);
        let b1 = b.actor("B1", 1);
        b.channel(a1, a2, 1, 1, 0).unwrap();
        b.channel(a2, a3, 1, 1, 0).unwrap();
        b.channel(a3, b1, 1, 1, 0).unwrap();
        b.channel(b1, a1, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let abs = auto_abstraction(&g).unwrap();
        assert_eq!(abs.index_of(b1), 2);
        assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
    }
}

//! Graceful degradation to conservative period bounds.
//!
//! Exact throughput analysis executes a full symbolic iteration — `Σγ(a)`
//! firings, potentially exponential in the graph description (paper,
//! Secs. 2 and 6). When a resource [`Budget`] is exhausted before the exact
//! answer is found, this module produces a *safe* answer instead of none:
//! an upper bound on the iteration period that the true period provably
//! does not exceed.
//!
//! Two bounds are available, tried in order of tightness:
//!
//! 1. **Abstraction bound** (paper, Thm. 1): for homogeneous graphs, derive
//!    an automatic abstraction ([`crate::auto`]), mechanically verify its
//!    conservativity premises ([`crate::conservativity`]), and return
//!    `n · λ(abstract)` — the throughput of the small abstract graph scaled
//!    by the cycle length. Polynomial in the actor count.
//! 2. **Serialization bound**: `Σ_a γ(a) · T(a)`, the makespan of one fully
//!    sequential iteration. A self-timed execution is at least as fast as
//!    the periodic schedule that runs one iteration to completion at a
//!    time, so the iteration period of a *live* graph never exceeds this
//!    sum. Computed with checked 128-bit arithmetic straight from the
//!    repetition vector — no iteration is ever executed.
//!
//! Both bounds are labelled with their [`FallbackMethod`] so callers (and
//! the CLI) can report *how* safe the number is. The serialization bound is
//! only meaningful for live graphs: a deadlocked graph has no period at
//! all, and a budget can be exhausted before deadlock would have been
//! detected. Degraded results therefore carry a liveness caveat, not a
//! liveness proof.

use sdfr_graph::budget::Budget;
use sdfr_graph::repetition::repetition_vector;
use sdfr_graph::{SdfError, SdfGraph};
use sdfr_maxplus::Rational;

use crate::auto::auto_abstraction;
use crate::conservativity::{conservative_period_bound, verify_abstraction};
use crate::CoreError;

/// How a conservative period bound was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackMethod {
    /// The paper's Thm. 1 bound over a mechanically verified automatic
    /// abstraction (homogeneous graphs only).
    Abstraction,
    /// The serialization bound `Σ γ(a)·T(a)` — one sequential iteration.
    Serialization,
}

impl FallbackMethod {
    /// The stable machine-readable token used in `sdfr-api/1` payloads
    /// (`"abstraction"` / `"serialization"`). Unlike the `Display` label,
    /// which is free to grow human-facing annotations, this token is part
    /// of the wire schema and never changes within a major version.
    pub fn token(&self) -> &'static str {
        match self {
            FallbackMethod::Abstraction => "abstraction",
            FallbackMethod::Serialization => "serialization",
        }
    }
}

impl std::fmt::Display for FallbackMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackMethod::Abstraction => "abstraction (Thm. 1)",
            FallbackMethod::Serialization => "serialization",
        })
    }
}

/// A safe upper bound on the iteration period, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservativeBound {
    /// The bound: the true iteration period of a live graph is ≤ this.
    pub bound: Rational,
    /// How the bound was derived.
    pub method: FallbackMethod,
}

/// The outcome of a budgeted analysis: exact if the budget sufficed,
/// degraded-but-safe otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisOutcome {
    /// The exact iteration period (`None` = no recurrent constraint, the
    /// graph is unboundedly fast).
    Exact(Option<Rational>),
    /// The budget ran out; a conservative bound stands in for the exact
    /// period. Valid provided the graph is live — exhaustion may have
    /// preceded deadlock detection.
    Degraded {
        /// The exhaustion that interrupted the exact analysis.
        exhausted: SdfError,
        /// The safe stand-in bound.
        bound: ConservativeBound,
    },
}

impl AnalysisOutcome {
    /// The period to report: exact when available, the conservative bound
    /// otherwise.
    pub fn period_or_bound(&self) -> Option<Rational> {
        match self {
            AnalysisOutcome::Exact(p) => *p,
            AnalysisOutcome::Degraded { bound, .. } => Some(bound.bound),
        }
    }

    /// `true` if the result is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, AnalysisOutcome::Exact(_))
    }
}

/// Batch-level aggregation of budgeted-analysis outcomes.
///
/// A batch (many graphs, or one graph at many budget tiers) produces one
/// [`AnalysisOutcome`] — or an error — per unit of work; this accumulator
/// folds them into the summary the batch front-end reports: how many units
/// were exact, how many degraded (broken down by [`FallbackMethod`], so
/// operators can see whether the cheap Thm. 1 bound or the loose
/// serialization bound stood in), and how many failed outright.
///
/// Aggregates [`merge`](Self::merge) associatively, so per-worker partial
/// sums can be folded in any order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeAggregate {
    /// Units whose exact analysis finished within budget.
    pub exact: u64,
    /// Units that degraded to the Thm. 1 abstraction bound.
    pub degraded_abstraction: u64,
    /// Units that degraded to the serialization bound.
    pub degraded_serialization: u64,
    /// Units that produced no result at all (invalid graph, I/O failure,
    /// exhaustion with no safe fallback).
    pub errors: u64,
}

impl OutcomeAggregate {
    /// Folds one analysis outcome into the aggregate.
    pub fn record(&mut self, outcome: &AnalysisOutcome) {
        match outcome {
            AnalysisOutcome::Exact(_) => self.exact += 1,
            AnalysisOutcome::Degraded { bound, .. } => match bound.method {
                FallbackMethod::Abstraction => self.degraded_abstraction += 1,
                FallbackMethod::Serialization => self.degraded_serialization += 1,
            },
        }
    }

    /// Folds one failed unit (no outcome) into the aggregate.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Combines another aggregate into this one (associative, commutative).
    pub fn merge(&mut self, other: &OutcomeAggregate) {
        self.exact += other.exact;
        self.degraded_abstraction += other.degraded_abstraction;
        self.degraded_serialization += other.degraded_serialization;
        self.errors += other.errors;
    }

    /// Units that degraded to any conservative bound.
    pub fn degraded(&self) -> u64 {
        self.degraded_abstraction + self.degraded_serialization
    }

    /// Total units recorded.
    pub fn total(&self) -> u64 {
        self.exact + self.degraded() + self.errors
    }

    /// `true` if every recorded unit produced an exact answer.
    pub fn all_exact(&self) -> bool {
        self.degraded() == 0 && self.errors == 0
    }
}

/// Computes a conservative upper bound on the iteration period *without*
/// executing an iteration.
///
/// For homogeneous graphs, the Thm. 1 abstraction bound is tried first
/// (automatic grouping, mechanical conservativity check); whenever that
/// path is unavailable — multirate input, unverifiable abstraction, or an
/// acyclic abstract graph — the serialization bound `Σ γ(a)·T(a)` is
/// returned. Both are valid upper bounds for live graphs.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] (via [`CoreError::Graph`]) if `g` has no
///   repetition vector — no iteration, hence no period to bound,
/// - [`SdfError::Overflow`] if `Σ γ(a)·T(a)` exceeds the integer range.
pub fn conservative_period_fallback(g: &SdfGraph) -> Result<ConservativeBound, CoreError> {
    if g.is_homogeneous() {
        // Thm. 1 path: automatic abstraction, verified, then bounded. Any
        // failure along the way falls through to the serialization bound —
        // degradation must not introduce new failure modes.
        if let Ok(abs) = auto_abstraction(g) {
            if let Ok(Ok(())) = verify_abstraction(g, &abs) {
                if let Ok(Some(bound)) = conservative_period_bound(g, &abs) {
                    return Ok(ConservativeBound {
                        bound,
                        method: FallbackMethod::Abstraction,
                    });
                }
            }
        }
    }
    serialization_bound(g).map(|bound| ConservativeBound {
        bound,
        method: FallbackMethod::Serialization,
    })
}

/// The serialization bound `Σ_a γ(a) · T(a)` as a rational. Every entry of
/// a graph's symbolic max-plus matrix is bounded by it (a causal chain of
/// firings can never exceed the fully serialized iteration), which is what
/// makes it a valid per-scenario fallback for scenario-aware workloads.
///
/// # Errors
///
/// As [`conservative_period_fallback`]: inconsistency (no repetition
/// vector) or overflow of the checked sum.
pub fn serialization_period_bound(g: &SdfGraph) -> Result<Rational, CoreError> {
    serialization_bound(g)
}

/// The serialization bound `Σ_a γ(a) · T(a)` as a rational, with checked
/// arithmetic throughout.
fn serialization_bound(g: &SdfGraph) -> Result<Rational, CoreError> {
    let gamma = repetition_vector(g)?;
    let overflow = CoreError::Graph(SdfError::Overflow {
        what: "serialization bound (sum of gamma(a) * T(a))",
    });
    let mut total: i128 = 0;
    for (aid, a) in g.actors() {
        let firings = i128::from(gamma.get(aid));
        let t = i128::from(a.execution_time());
        let product = firings.checked_mul(t).ok_or_else(|| overflow.clone())?;
        total = total.checked_add(product).ok_or_else(|| overflow.clone())?;
    }
    let total = i64::try_from(total).map_err(|_| overflow)?;
    Ok(Rational::from(total))
}

/// Analyzes the throughput of `g` under a resource budget, degrading to a
/// conservative bound when the budget is exhausted.
///
/// This is the library-level equivalent of `sdfr analyze --deadline …`:
/// the exact spectral analysis runs first with every step charged to
/// `budget`; on [`SdfError::Exhausted`] the cheap (iteration-free)
/// [`conservative_period_fallback`] stands in, and the exhaustion is
/// reported alongside the bound rather than swallowed.
///
/// # Errors
///
/// Non-budget analysis errors (inconsistency, deadlock, overflow) propagate
/// unchanged; exhaustion only surfaces as an error if even the fallback is
/// impossible (e.g. an inconsistent graph, which has no period to bound).
///
/// # Example
///
/// ```
/// use sdfr_core::degrade::{analyze_with_budget, AnalysisOutcome};
/// use sdfr_graph::budget::Budget;
/// use sdfr_graph::SdfGraph;
///
/// // An iteration of this graph needs 1e9 + 1 firings; exact analysis is
/// // hopeless under a small budget, but the bound is instant.
/// let mut b = SdfGraph::builder("huge");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 1_000_000_000, 1, 0)?;
/// let g = b.build()?;
/// let budget = Budget::unlimited().with_max_firings(1_000_000);
/// match analyze_with_budget(&g, &budget)? {
///     AnalysisOutcome::Degraded { bound, .. } => {
///         assert_eq!(bound.bound, 1_000_000_001i64.into());
///     }
///     other => panic!("expected degradation, got {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_with_budget(g: &SdfGraph, budget: &Budget) -> Result<AnalysisOutcome, CoreError> {
    analyze_with_session(&sdfr_analysis::AnalysisSession::with_budget(
        g.clone(),
        budget.clone(),
    ))
}

/// [`analyze_with_budget`] on an [`AnalysisSession`](sdfr_analysis::AnalysisSession):
/// the exact analysis reuses (or populates) the session's cached symbolic
/// iteration under the session budget, and degradation works as in
/// [`analyze_with_budget`]. The fallback bound is iteration-free, so it
/// remains available even when the session budget is already exhausted.
///
/// # Errors
///
/// See [`analyze_with_budget`].
pub fn analyze_with_session(
    session: &sdfr_analysis::AnalysisSession,
) -> Result<AnalysisOutcome, CoreError> {
    match session.throughput() {
        Ok(t) => Ok(AnalysisOutcome::Exact(t.period())),
        Err(exhausted @ SdfError::Exhausted { .. }) => {
            let bound = conservative_period_fallback(session.graph())?;
            Ok(AnalysisOutcome::Degraded { exhausted, bound })
        }
        Err(e) => Err(CoreError::Graph(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;
    use sdfr_graph::budget::BudgetResource;
    use std::time::{Duration, Instant};

    fn huge_multirate() -> SdfGraph {
        let mut b = SdfGraph::builder("huge");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1_000_000_000, 1, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degradation_is_fast_and_labelled() {
        let g = huge_multirate();
        let budget = Budget::unlimited()
            .with_max_firings(1_000_000)
            .with_deadline(Duration::from_secs(1));
        let t0 = Instant::now();
        let outcome = analyze_with_budget(&g, &budget).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1), "must degrade fast");
        match &outcome {
            AnalysisOutcome::Degraded { exhausted, bound } => {
                assert!(matches!(exhausted, SdfError::Exhausted { .. }));
                assert_eq!(bound.method, FallbackMethod::Serialization);
                // γ = (1, 1e9), T = (1, 1): bound = 1e9 + 1.
                assert_eq!(bound.bound, Rational::from(1_000_000_001));
                assert_eq!(outcome.period_or_bound(), Some(bound.bound));
                assert!(!outcome.is_exact());
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn ample_budget_stays_exact() {
        let mut b = SdfGraph::builder("c");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let outcome =
            analyze_with_budget(&g, &Budget::unlimited().with_max_firings(1_000)).unwrap();
        assert_eq!(outcome, AnalysisOutcome::Exact(Some(Rational::from(5))));
        assert!(outcome.is_exact());
    }

    #[test]
    fn bound_dominates_true_period() {
        // Multirate graph where the exact period is computable: the
        // serialization bound must never be below it.
        let mut b = SdfGraph::builder("mr");
        let x = b.actor("x", 3);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        let g = b.build().unwrap();
        let exact = throughput(&g).unwrap().period().unwrap();
        let fallback = conservative_period_fallback(&g).unwrap();
        assert_eq!(fallback.method, FallbackMethod::Serialization);
        assert!(exact <= fallback.bound, "{exact} <= {}", fallback.bound);
    }

    #[test]
    fn homogeneous_graphs_use_the_abstraction_bound() {
        // A regular ladder in the naming convention auto_abstraction
        // expects: the Thm. 1 bound applies and dominates the true period.
        let mut b = SdfGraph::builder("chain");
        let n = 6;
        let actors: Vec<_> = (0..n).map(|i| b.actor(format!("A{}", i + 1), 2)).collect();
        for i in 0..n - 1 {
            b.channel(actors[i], actors[i + 1], 1, 1, 0).unwrap();
        }
        b.channel(actors[n - 1], actors[0], 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let fallback = conservative_period_fallback(&g).unwrap();
        assert_eq!(fallback.method, FallbackMethod::Abstraction);
        let exact = throughput(&g).unwrap().period().unwrap();
        assert!(exact <= fallback.bound, "{exact} <= {}", fallback.bound);
    }

    #[test]
    fn outcome_aggregate_counts_and_merges() {
        let exact = AnalysisOutcome::Exact(Some(Rational::from(5)));
        let degraded = AnalysisOutcome::Degraded {
            exhausted: SdfError::Exhausted {
                resource: BudgetResource::Firings,
                spent: 11,
                limit: 10,
            },
            bound: ConservativeBound {
                bound: Rational::from(42),
                method: FallbackMethod::Serialization,
            },
        };
        let mut a = OutcomeAggregate::default();
        a.record(&exact);
        a.record(&exact);
        a.record(&degraded);
        assert_eq!(a.exact, 2);
        assert_eq!(a.degraded(), 1);
        assert_eq!(a.degraded_serialization, 1);
        assert!(!a.all_exact());

        let mut b = OutcomeAggregate::default();
        b.record(&AnalysisOutcome::Degraded {
            exhausted: SdfError::Exhausted {
                resource: BudgetResource::WallClock,
                spent: 2,
                limit: 1,
            },
            bound: ConservativeBound {
                bound: Rational::from(7),
                method: FallbackMethod::Abstraction,
            },
        });
        b.record_error();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.total(), 5);
        assert_eq!(merged.degraded(), 2);
        assert_eq!(merged.degraded_abstraction, 1);
        assert_eq!(merged.errors, 1);

        let mut only_exact = OutcomeAggregate::default();
        only_exact.record(&exact);
        assert!(only_exact.all_exact());
    }

    #[test]
    fn inconsistent_graphs_cannot_degrade() {
        let mut b = SdfGraph::builder("bad");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        b.channel(x, y, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(conservative_period_fallback(&g).is_err());
        let budget = Budget::unlimited().with_max_firings(10);
        assert!(analyze_with_budget(&g, &budget).is_err());
    }

    #[test]
    fn cancellation_degrades_too() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let g = huge_multirate();
        let flag = Arc::new(AtomicBool::new(true)); // cancelled up front
        let budget = Budget::unlimited().with_cancel_flag(flag);
        match analyze_with_budget(&g, &budget).unwrap() {
            AnalysisOutcome::Degraded { exhausted, .. } => {
                assert!(matches!(
                    exhausted,
                    SdfError::Exhausted {
                        resource: BudgetResource::Cancelled,
                        ..
                    }
                ));
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // Un-cancelled flags leave small analyses exact.
        let flag = Arc::new(AtomicBool::new(false));
        let _ = Ordering::Relaxed; // (import used above)
        let mut b = SdfGraph::builder("c");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let outcome = analyze_with_budget(&g, &Budget::unlimited().with_cancel_flag(flag)).unwrap();
        assert!(outcome.is_exact());
    }
}

//! The abstraction transformation (paper, Sec. 4.2, Defs. 3–4).
//!
//! An *abstraction* `(α, I)` maps every actor `a` to an abstract actor
//! `α(a)` and an index `I(a)` such that
//!
//! - actors of the same group have distinct indices and equal
//!   repetition-vector entries, and
//! - every token-free edge respects the index order (`I(a) ≤ I(b)` or
//!   `d > 0`).
//!
//! The *abstract graph* (Def. 4) has one actor per group, whose execution
//! time is the maximum over the group, and one edge per original edge with
//! delay `I(b) − I(a) + N·d` (indices here are 0-based; only differences
//! enter the formula, so this matches the paper's 1-based presentation).
//! Firing `n·N + i` of abstract actor `α(a)` models firing `n` of the
//! original actor with index `i` — or a harmless *dummy firing* if the group
//! has no actor with index `i`.

use std::collections::HashMap;

use sdfr_graph::repetition::repetition_vector;
use sdfr_graph::{ActorId, SdfGraph};

use crate::prune;
use crate::CoreError;

/// A validated abstraction `(α, I)` of a homogeneous SDF graph (Def. 3).
///
/// Create one with [`Abstraction::builder`] (explicit assignment) or
/// [`crate::auto::auto_abstraction`] (derived from actor-name patterns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abstraction {
    /// Per original actor: the group id (dense, by first occurrence).
    group: Vec<usize>,
    /// Per original actor: the index `I(a)` (0-based).
    index: Vec<u64>,
    /// Group names, by group id.
    group_names: Vec<String>,
    /// `N = max I(a) + 1`: the firing cycle length of the abstract actors.
    n: u64,
}

impl Abstraction {
    /// Starts building an abstraction for `g`.
    pub fn builder(g: &SdfGraph) -> AbstractionBuilder<'_> {
        AbstractionBuilder {
            g,
            assignment: vec![None; g.num_actors()],
        }
    }

    /// The abstract actor (group) name of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to the underlying graph.
    pub fn group_of(&self, a: ActorId) -> &str {
        &self.group_names[self.group[a.index()]]
    }

    /// The index `I(a)` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to the underlying graph.
    pub fn index_of(&self, a: ActorId) -> u64 {
        self.index[a.index()]
    }

    /// `N`, the abstract firing-cycle length (`max I(a) + 1`).
    pub fn cycle_length(&self) -> u64 {
        self.n
    }

    /// The number of abstract actors (groups).
    pub fn num_groups(&self) -> usize {
        self.group_names.len()
    }

    /// The group names in group-id order.
    pub fn group_names(&self) -> &[String] {
        &self.group_names
    }

    pub(crate) fn group_id(&self, a: ActorId) -> usize {
        self.group[a.index()]
    }
}

/// Incremental construction of an [`Abstraction`]; validates Def. 3 at
/// [`build`](AbstractionBuilder::build) time.
#[derive(Debug)]
pub struct AbstractionBuilder<'g> {
    g: &'g SdfGraph,
    assignment: Vec<Option<(String, u64)>>,
}

impl AbstractionBuilder<'_> {
    /// Assigns actor `a` to abstract actor `group` with index `index`
    /// (0-based).
    ///
    /// Later assignments overwrite earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to the graph.
    pub fn assign(&mut self, a: ActorId, group: impl Into<String>, index: u64) -> &mut Self {
        self.assignment[a.index()] = Some((group.into(), index));
        self
    }

    /// Validates Def. 3 and produces the abstraction.
    ///
    /// # Errors
    ///
    /// - [`CoreError::RequiresHomogeneous`] if the graph is multirate,
    /// - [`CoreError::UnassignedActor`] if an actor has no assignment,
    /// - [`CoreError::DuplicateIndexInGroup`] on index clashes in a group,
    /// - [`CoreError::UnequalRepetitionInGroup`] on γ mismatches in a group,
    /// - [`CoreError::IndexOrderViolated`] if a token-free edge runs against
    ///   the index order,
    /// - [`CoreError::Graph`] if the graph is inconsistent.
    pub fn build(&self) -> Result<Abstraction, CoreError> {
        let g = self.g;
        if !g.is_homogeneous() {
            return Err(CoreError::RequiresHomogeneous);
        }
        let gamma = repetition_vector(g)?;

        let mut group_ids: HashMap<&str, usize> = HashMap::new();
        let mut group_names: Vec<String> = Vec::new();
        let mut group = Vec::with_capacity(g.num_actors());
        let mut index = Vec::with_capacity(g.num_actors());
        for a in g.actor_ids() {
            let (name, idx) = self.assignment[a.index()]
                .as_ref()
                .ok_or(CoreError::UnassignedActor { actor: a })?;
            let gid = *group_ids.entry(name.as_str()).or_insert_with(|| {
                group_names.push(name.clone());
                group_names.len() - 1
            });
            group.push(gid);
            index.push(*idx);
        }

        // Distinct indices and equal γ within each group.
        let mut seen: HashMap<(usize, u64), ()> = HashMap::new();
        let mut group_gamma: HashMap<usize, u64> = HashMap::new();
        for a in g.actor_ids() {
            let gid = group[a.index()];
            let idx = index[a.index()];
            if seen.insert((gid, idx), ()).is_some() {
                return Err(CoreError::DuplicateIndexInGroup {
                    group: group_names[gid].clone(),
                    index: idx,
                });
            }
            let ga = gamma.get(a);
            match group_gamma.insert(gid, ga) {
                Some(prev) if prev != ga => {
                    return Err(CoreError::UnequalRepetitionInGroup {
                        group: group_names[gid].clone(),
                    })
                }
                _ => {}
            }
        }

        // Token-free edges must respect the index order.
        for (_, ch) in g.channels() {
            if ch.initial_tokens() == 0 && index[ch.source().index()] > index[ch.target().index()] {
                return Err(CoreError::IndexOrderViolated {
                    source: ch.source(),
                    target: ch.target(),
                });
            }
        }

        let n = index.iter().copied().max().map_or(1, |m| m + 1);
        Ok(Abstraction {
            group,
            index,
            group_names,
            n,
        })
    }
}

/// Constructs the abstract graph `(A, D, T)^{α,I}` of Def. 4 and prunes
/// redundant parallel edges (keeping, per actor pair, only the edge with the
/// fewest initial tokens — the paper notes the others are redundant).
///
/// The resulting graph is homogeneous; its actor order follows the group-id
/// order of `abs` (use [`SdfGraph::actor_by_name`] with the group names to
/// locate actors).
///
/// # Errors
///
/// Currently infallible for a validated [`Abstraction`], but returns
/// `Result` to keep the signature stable while Def. 4 extensions (multirate
/// abstraction) land.
///
/// # Example
///
/// ```
/// use sdfr_core::{abstract_graph, Abstraction};
/// use sdfr_graph::SdfGraph;
///
/// // A three-stage pipeline with feedback, grouped into one abstract actor.
/// let mut b = SdfGraph::builder("pipe");
/// let a1 = b.actor("a1", 2);
/// let a2 = b.actor("a2", 5);
/// let a3 = b.actor("a3", 3);
/// b.channel(a1, a2, 1, 1, 0)?;
/// b.channel(a2, a3, 1, 1, 0)?;
/// b.channel(a3, a1, 1, 1, 1)?;
/// let g = b.build()?;
///
/// let mut builder = Abstraction::builder(&g);
/// builder.assign(a1, "A", 0).assign(a2, "A", 1).assign(a3, "A", 2);
/// let abs = builder.build()?;
/// let small = abstract_graph(&g, &abs)?;
/// assert_eq!(small.num_actors(), 1);
/// // The abstract actor takes the slowest original time.
/// let a = small.actor_by_name("A").unwrap();
/// assert_eq!(small.actor(a).execution_time(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn abstract_graph(g: &SdfGraph, abs: &Abstraction) -> Result<SdfGraph, CoreError> {
    Ok(prune::prune_redundant_edges(&abstract_graph_unpruned(
        g, abs,
    )?))
}

/// [`abstract_graph`] without the final pruning step — the literal Def. 4,
/// with one abstract edge per original edge (useful for testing and for the
/// pruning ablation).
///
/// # Errors
///
/// See [`abstract_graph`].
pub fn abstract_graph_unpruned(g: &SdfGraph, abs: &Abstraction) -> Result<SdfGraph, CoreError> {
    let n = abs.cycle_length();
    let mut b = SdfGraph::builder(format!("{}^abs", g.name()));

    // One abstract actor per group; T'(b) = max execution time in group.
    let mut times = vec![0; abs.num_groups()];
    for (aid, a) in g.actors() {
        let gid = abs.group_id(aid);
        times[gid] = times[gid].max(a.execution_time());
    }
    let abstract_ids: Vec<_> = abs
        .group_names()
        .iter()
        .zip(&times)
        .map(|(name, &t)| b.actor(name.clone(), t))
        .collect();

    // D' = { (α(a1), α(a2), p, c, I(a2) − I(a1) + N·d) }.
    for (_, ch) in g.channels() {
        let src = abstract_ids[abs.group_id(ch.source())];
        let dst = abstract_ids[abs.group_id(ch.target())];
        let delay = abs.index_of(ch.target()) as i64 - abs.index_of(ch.source()) as i64
            + (n * ch.initial_tokens()) as i64;
        debug_assert!(delay >= 0, "Def. 3 validity implies non-negative delays");
        b.channel(src, dst, ch.production(), ch.consumption(), delay as u64)
            .expect("endpoints were created above");
    }
    b.build().map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2(a): three A actors in a cycle (one token back),
    /// two B actors, cross edges, plus tokens as drawn.
    fn fig2a() -> (SdfGraph, Vec<ActorId>, Vec<ActorId>) {
        let mut b = SdfGraph::builder("fig2a");
        let a1 = b.actor("A1", 1);
        let a2 = b.actor("A2", 1);
        let a3 = b.actor("A3", 1);
        let b1 = b.actor("B1", 1);
        let b2 = b.actor("B2", 1);
        b.channel(a1, a2, 1, 1, 0).unwrap();
        b.channel(a2, a3, 1, 1, 0).unwrap();
        b.channel(a3, a1, 1, 1, 1).unwrap();
        b.channel(a1, b1, 1, 1, 0).unwrap();
        b.channel(a2, b2, 1, 1, 0).unwrap();
        b.channel(b1, b2, 1, 1, 0).unwrap();
        b.channel(b2, b1, 1, 1, 1).unwrap();
        b.channel(b1, a2, 1, 1, 1).unwrap();
        (b.build().unwrap(), vec![a1, a2, a3], vec![b1, b2])
    }

    fn fig2_abstraction(g: &SdfGraph, aa: &[ActorId], bb: &[ActorId]) -> Abstraction {
        let mut builder = Abstraction::builder(g);
        for (i, &a) in aa.iter().enumerate() {
            builder.assign(a, "A", i as u64);
        }
        for (i, &b) in bb.iter().enumerate() {
            builder.assign(b, "B", i as u64);
        }
        builder.build().unwrap()
    }

    #[test]
    fn fig2_abstraction_validates() {
        let (g, aa, bb) = fig2a();
        let abs = fig2_abstraction(&g, &aa, &bb);
        assert_eq!(abs.cycle_length(), 3);
        assert_eq!(abs.num_groups(), 2);
        assert_eq!(abs.group_of(aa[0]), "A");
        assert_eq!(abs.index_of(aa[2]), 2);
        assert_eq!(abs.group_names(), &["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn fig2_abstract_graph_edges() {
        let (g, aa, bb) = fig2a();
        let abs = fig2_abstraction(&g, &aa, &bb);
        let unpruned = abstract_graph_unpruned(&g, &abs).unwrap();
        assert_eq!(unpruned.num_actors(), 2);
        // One abstract edge per original edge.
        assert_eq!(unpruned.num_channels(), g.num_channels());
        // Delays per Def. 4 (N = 3): A1->A2 gives 1; A3->A1 gives
        // 0-2+3 = 1; B1->A2 gives I(A2)-I(B1)+3 = 1-0+3 = 4.
        let a = unpruned.actor_by_name("A").unwrap();
        let self_edges: Vec<u64> = unpruned
            .channels()
            .filter(|(_, c)| c.source() == a && c.target() == a)
            .map(|(_, c)| c.initial_tokens())
            .collect();
        // A1->A2 (1), A2->A3 (1), A3->A1 (1).
        assert_eq!(self_edges, vec![1, 1, 1]);

        let pruned = abstract_graph(&g, &abs).unwrap();
        // After pruning, at most one edge per ordered actor pair.
        let mut pairs = std::collections::HashSet::new();
        for (_, c) in pruned.channels() {
            assert!(pairs.insert((c.source(), c.target())));
        }
        // The A self-edge keeps the minimum delay 1.
        let a = pruned.actor_by_name("A").unwrap();
        let self_edge = pruned
            .channels()
            .find(|(_, c)| c.source() == a && c.target() == a)
            .unwrap()
            .1;
        assert_eq!(self_edge.initial_tokens(), 1);
    }

    #[test]
    fn execution_time_is_group_max() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 0).assign(y, "G", 1);
        let abs = builder.build().unwrap();
        let ag = abstract_graph(&g, &abs).unwrap();
        let ga = ag.actor_by_name("G").unwrap();
        assert_eq!(ag.actor(ga).execution_time(), 7);
    }

    #[test]
    fn rejects_multirate_graph() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 0).assign(y, "G", 1);
        assert!(matches!(
            builder.build(),
            Err(CoreError::RequiresHomogeneous)
        ));
    }

    #[test]
    fn rejects_unassigned_actor() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 0);
        assert!(matches!(
            builder.build(),
            Err(CoreError::UnassignedActor { actor }) if actor == y
        ));
    }

    #[test]
    fn rejects_duplicate_index() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 0).assign(y, "G", 0);
        assert!(matches!(
            builder.build(),
            Err(CoreError::DuplicateIndexInGroup { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_index_order_violation() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap(); // token-free, so I(x) <= I(y)
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 1).assign(y, "H", 0);
        assert!(matches!(
            builder.build(),
            Err(CoreError::IndexOrderViolated { .. })
        ));
    }

    #[test]
    fn token_carrying_back_edge_may_violate_order() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap(); // d > 0 exempts the order rule
        let g = b.build().unwrap();
        let mut builder = Abstraction::builder(&g);
        builder.assign(x, "G", 0).assign(y, "G", 1);
        let abs = builder.build().unwrap();
        // Back edge delay: I(x) − I(y) + N·1 = 0 − 1 + 2 = 1.
        let ag = abstract_graph(&g, &abs).unwrap();
        let ga = ag.actor_by_name("G").unwrap();
        let delays: Vec<u64> = ag
            .channels()
            .filter(|(_, c)| c.source() == ga)
            .map(|(_, c)| c.initial_tokens())
            .collect();
        assert_eq!(delays, vec![1]);
    }

    #[test]
    fn identity_abstraction_preserves_graph_shape() {
        // Grouping every actor alone with index 0 reproduces the original
        // graph with delays scaled by N = 1.
        let (g, aa, bb) = fig2a();
        let mut builder = Abstraction::builder(&g);
        for &a in aa.iter().chain(&bb) {
            builder.assign(a, g.actor(a).name().to_string(), 0);
        }
        let abs = builder.build().unwrap();
        assert_eq!(abs.cycle_length(), 1);
        let ag = abstract_graph_unpruned(&g, &abs).unwrap();
        assert_eq!(ag.num_actors(), g.num_actors());
        assert_eq!(ag.num_channels(), g.num_channels());
        for ((_, c1), (_, c2)) in g.channels().zip(ag.channels()) {
            assert_eq!(c1.initial_tokens(), c2.initial_tokens());
        }
    }
}

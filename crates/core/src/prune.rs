//! Redundant parallel-edge pruning.
//!
//! The abstraction of Def. 4 maps every original edge to an abstract edge,
//! which frequently yields several parallel edges between the same pair of
//! abstract actors. When such edges agree on rates, only the one with the
//! fewest initial tokens constrains the execution — the others are redundant
//! and can be removed without changing any timing behaviour (paper,
//! Sec. 4.2: "such a set of edges can always be pruned to only the one with
//! the smallest number of initial tokens").

use std::collections::HashMap;

use sdfr_graph::{ActorId, SdfGraph};

/// Removes redundant parallel edges: among channels that share source,
/// target, production and consumption rates, only the one with the fewest
/// initial tokens is kept.
///
/// Channels between the same actors with *different* rates are never merged
/// — they impose incomparable constraints.
///
/// # Example
///
/// ```
/// use sdfr_core::prune::prune_redundant_edges;
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 1);
/// b.channel(x, x, 1, 1, 1)?;
/// b.channel(x, x, 1, 1, 3)?; // redundant: more tokens, same rates
/// let g = prune_redundant_edges(&b.build()?);
/// assert_eq!(g.num_channels(), 1);
/// assert_eq!(g.channels().next().unwrap().1.initial_tokens(), 1);
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn prune_redundant_edges(g: &SdfGraph) -> SdfGraph {
    let mut best: HashMap<(ActorId, ActorId, u64, u64), u64> = HashMap::new();
    let mut order: Vec<(ActorId, ActorId, u64, u64)> = Vec::new();
    for (_, ch) in g.channels() {
        let key = (ch.source(), ch.target(), ch.production(), ch.consumption());
        match best.get_mut(&key) {
            None => {
                best.insert(key, ch.initial_tokens());
                order.push(key);
            }
            Some(d) => *d = (*d).min(ch.initial_tokens()),
        }
    }

    let mut b = SdfGraph::builder(g.name().to_string());
    let ids: Vec<_> = g
        .actors()
        .map(|(_, a)| b.actor(a.name().to_string(), a.execution_time()))
        .collect();
    for key @ (src, dst, p, c) in order {
        b.channel(ids[src.index()], ids[dst.index()], p, c, best[&key])
            .expect("endpoints rebuilt above");
    }
    b.build().expect("pruning preserves validity")
}

/// The number of channels [`prune_redundant_edges`] would remove.
pub fn redundant_edge_count(g: &SdfGraph) -> usize {
    let mut seen: HashMap<(ActorId, ActorId, u64, u64), ()> = HashMap::new();
    let mut redundant = 0;
    for (_, ch) in g.channels() {
        let key = (ch.source(), ch.target(), ch.production(), ch.consumption());
        if seen.insert(key, ()).is_some() {
            redundant += 1;
        }
    }
    redundant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_min_token_edge() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 5).unwrap();
        b.channel(x, y, 1, 1, 2).unwrap();
        b.channel(x, y, 1, 1, 9).unwrap();
        let g = b.build().unwrap();
        assert_eq!(redundant_edge_count(&g), 2);
        let p = prune_redundant_edges(&g);
        assert_eq!(p.num_channels(), 1);
        assert_eq!(p.channels().next().unwrap().1.initial_tokens(), 2);
    }

    #[test]
    fn different_rates_not_merged() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 5).unwrap();
        b.channel(x, y, 1, 1, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(redundant_edge_count(&g), 0);
        assert_eq!(prune_redundant_edges(&g).num_channels(), 2);
    }

    #[test]
    fn direction_matters() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 1).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(prune_redundant_edges(&g).num_channels(), 2);
    }

    #[test]
    fn preserves_actors_and_times() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 4);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let p = prune_redundant_edges(&g);
        assert_eq!(p.num_actors(), 1);
        let xa = p.actor_by_name("x").unwrap();
        assert_eq!(p.actor(xa).execution_time(), 4);
        assert_eq!(p.name(), "g");
    }

    #[test]
    fn pruning_preserves_throughput() {
        use sdfr_analysis::throughput::throughput;
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 2);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(x, y, 1, 1, 4).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        b.channel(y, x, 1, 1, 2).unwrap();
        let g = b.build().unwrap();
        let p = prune_redundant_edges(&g);
        assert_eq!(
            throughput(&g).unwrap().period(),
            throughput(&p).unwrap().period()
        );
    }
}

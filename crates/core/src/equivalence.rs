//! Throughput-equivalence validation between a graph and its conversions.
//!
//! The paper's Sec. 6 claims the novel conversion "has the same throughput
//! and latency as the original graph". These helpers check the throughput
//! claim mechanically for concrete instances, using two *independent*
//! analysis routes: the original graph's period comes from its max-plus
//! eigenvalue, the converted HSDF's period from a maximum-cycle-ratio
//! computation on its actor/channel structure (Howard's algorithm).

use sdfr_analysis::throughput::{hsdf_period, throughput};
use sdfr_graph::{SdfError, SdfGraph};
use sdfr_maxplus::Rational;

/// The outcome of a throughput comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodComparison {
    /// Both graphs have the same (finite or absent) iteration period.
    Equal(Option<Rational>),
    /// The periods differ.
    Different {
        /// Iteration period of the original graph.
        original: Option<Rational>,
        /// Iteration period of the converted graph.
        converted: Option<Rational>,
    },
}

impl PeriodComparison {
    /// Returns `true` for [`PeriodComparison::Equal`].
    pub fn is_equal(self) -> bool {
        matches!(self, PeriodComparison::Equal(_))
    }
}

/// Compares the iteration period of `original` (any consistent SDF graph)
/// with that of `converted` (an HSDF graph produced by a conversion).
///
/// A deadlocked conversion (zero-token cycle) is reported as
/// `Different { converted: None, .. }` only when the original has a finite
/// period — a correct conversion of a live graph is always live.
///
/// # Errors
///
/// Propagates analysis errors ([`SdfError::Inconsistent`],
/// [`SdfError::Deadlock`] from the original, [`SdfError::NotHomogeneous`]
/// if `converted` is not an HSDF graph).
pub fn compare_periods(
    original: &SdfGraph,
    converted: &SdfGraph,
) -> Result<PeriodComparison, SdfError> {
    let orig = throughput(original)?.period();
    let conv = hsdf_period(converted)?.finite();
    Ok(if orig == conv {
        PeriodComparison::Equal(orig)
    } else {
        PeriodComparison::Different {
            original: orig,
            converted: conv,
        }
    })
}

/// Asserts throughput equivalence of both paper conversions for `g`;
/// returns the common period. Intended for tests and the experiment
/// harness.
///
/// # Errors
///
/// Propagates conversion/analysis errors; a period mismatch is not an error
/// but is returned as `Ok(Err(comparison))` for the caller to report.
pub fn validate_conversions(
    g: &SdfGraph,
) -> Result<Result<Option<Rational>, PeriodComparison>, SdfError> {
    let trad = crate::traditional::convert(g)?;
    let novel = crate::novel::convert(g)?;
    let c1 = compare_periods(g, &trad.graph)?;
    let c2 = compare_periods(g, &novel.graph)?;
    match (c1, c2) {
        (PeriodComparison::Equal(p1), PeriodComparison::Equal(p2)) if p1 == p2 => Ok(Ok(p1)),
        (PeriodComparison::Equal(_), d @ PeriodComparison::Different { .. }) => Ok(Err(d)),
        (d, _) => Ok(Err(d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_different() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(compare_periods(&g, &g).unwrap().is_equal());

        let mut b = SdfGraph::builder("slower");
        let x = b.actor("x", 5);
        let y = b.actor("y", 5);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let slower = b.build().unwrap();
        let cmp = compare_periods(&g, &slower).unwrap();
        assert!(!cmp.is_equal());
        match cmp {
            PeriodComparison::Different {
                original,
                converted,
            } => {
                assert_eq!(original, Some(Rational::new(5, 1)));
                assert_eq!(converted, Some(Rational::new(10, 1)));
            }
            PeriodComparison::Equal(_) => unreachable!(),
        }
    }

    #[test]
    fn validate_both_conversions_on_multirate() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        let g = b.build().unwrap();
        let result = validate_conversions(&g).unwrap();
        assert!(result.is_ok(), "{result:?}");
        assert!(result.unwrap().is_some());
    }

    #[test]
    fn validate_unbounded_case() {
        let mut b = SdfGraph::builder("open");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 1, 4).unwrap();
        let g = b.build().unwrap();
        let result = validate_conversions(&g).unwrap();
        assert_eq!(result, Ok(None));
    }
}

//! The `N`-fold unfolding of a timed SDF graph (paper, Def. 5).
//!
//! The unfolding splits every actor `a` into `N` copies `a_0 … a_{N−1}`;
//! firing `k` of the original corresponds to firing `k div N` of copy
//! `a_{k mod N}`. Every edge `(a, b, p, c, d)` becomes `N` edges: for each
//! `0 ≤ i < N`, with `j = (i + d) mod N`, an edge `(a_i, b_j, p, c, d')`
//! where `d' = d div N + t` and `t = 1` if `j < i`, else `0`.
//!
//! The unfolding mimics the original exactly (Prop. 2: the throughput per
//! copy is `τ(a)/N`). Its role in the paper is proof machinery: unfolding
//! the *abstract* graph by `N` makes it directly comparable to the original
//! via Prop. 1, which is how Theorem 1 (conservativity) is established —
//! and how [`crate::conservativity`] checks instances mechanically.

use sdfr_graph::{ActorId, SdfGraph};

/// Computes the `N`-fold unfolding of `g`.
///
/// Copy `i` of actor `a` is named `"{a}${i}"`; use
/// [`unfolded_actor_name`] to construct the name of a specific copy.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use sdfr_core::unfold::{unfold, unfolded_actor_name};
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 2);
/// b.channel(x, x, 1, 1, 1)?;
/// let g = b.build()?;
///
/// let u = unfold(&g, 3);
/// assert_eq!(u.num_actors(), 3);
/// // The single token distributes: x_0 -> x_1 -> x_2 -> x_0 with one
/// // token on the wrap-around edge.
/// assert_eq!(u.total_initial_tokens(), 1);
/// assert!(u.actor_by_name(&unfolded_actor_name("x", 2)).is_some());
/// # Ok::<(), sdfr_graph::SdfError>(())
/// ```
pub fn unfold(g: &SdfGraph, n: u64) -> SdfGraph {
    assert!(n >= 1, "unfolding degree must be at least 1");
    let mut b = SdfGraph::builder(format!("{}^unf{}", g.name(), n));
    // ids[a][i] = copy i of actor a.
    let ids: Vec<Vec<ActorId>> = g
        .actors()
        .map(|(_, a)| {
            (0..n)
                .map(|i| b.actor(unfolded_actor_name(a.name(), i), a.execution_time()))
                .collect()
        })
        .collect();
    for (_, ch) in g.channels() {
        let d = ch.initial_tokens();
        for i in 0..n {
            let j = (i + d) % n;
            let t = u64::from(j < i);
            let d_prime = d / n + t;
            b.channel(
                ids[ch.source().index()][i as usize],
                ids[ch.target().index()][j as usize],
                ch.production(),
                ch.consumption(),
                d_prime,
            )
            .expect("endpoints created above");
        }
    }
    b.build().expect("unfolding preserves validity")
}

/// The name of copy `i` of actor `name` in an unfolded graph.
pub fn unfolded_actor_name(name: &str, i: u64) -> String {
    format!("{name}${i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;
    use sdfr_maxplus::Rational;

    fn cycle(tx: i64, ty: i64, tokens: u64) -> SdfGraph {
        let mut b = SdfGraph::builder("cycle");
        let x = b.actor("x", tx);
        let y = b.actor("y", ty);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, tokens).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn structure_counts() {
        let g = cycle(1, 2, 1);
        let u = unfold(&g, 4);
        assert_eq!(u.num_actors(), 8);
        assert_eq!(u.num_channels(), 8);
        // Total tokens preserved: Σ over unfolded edges of d' == d for each
        // original edge (d < n case distributes d tokens as t-flags).
        assert_eq!(u.total_initial_tokens(), g.total_initial_tokens());
    }

    #[test]
    fn token_distribution_for_large_d() {
        // d = 5, n = 3: copies get d' = 1 + wrap flags; total stays 5.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 5).unwrap();
        let g = b.build().unwrap();
        let u = unfold(&g, 3);
        assert_eq!(u.total_initial_tokens(), 5);
        assert_eq!(u.num_channels(), 3);
    }

    #[test]
    fn self_edge_unfolds_to_ring() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let u = unfold(&g, 3);
        // Ring x0 -> x1 -> x2 -> x0 with exactly one token.
        let mut with_token = 0;
        for (_, c) in u.channels() {
            assert_ne!(c.source(), c.target(), "no self-loops in the ring");
            with_token += u64::from(c.initial_tokens() > 0);
        }
        assert_eq!(with_token, 1);
    }

    #[test]
    fn throughput_scales_by_n_prop2() {
        // Prop. 2: per-copy throughput is τ(a)/N. One iteration of
        // unf(g, N) fires every copy once, covering N original iterations,
        // so its iteration period is N · λ(g).
        for n in [1u64, 2, 3, 5] {
            let g = cycle(2, 3, 1);
            let u = unfold(&g, n);
            let l_g = throughput(&g).unwrap().period().unwrap();
            let l_u = throughput(&u).unwrap().period().unwrap();
            assert_eq!(l_u, l_g * Rational::from(n as i64), "n = {n}");
        }
    }

    #[test]
    fn throughput_scaling_with_pipelining_tokens() {
        // With 3 tokens on the cycle, λ = 5/3; unfolding must scale exactly.
        let g = cycle(2, 3, 3);
        let l_g = throughput(&g).unwrap().period().unwrap();
        assert_eq!(l_g, Rational::new(5, 3));
        let u = unfold(&g, 3);
        let l_u = throughput(&u).unwrap().period().unwrap();
        assert_eq!(l_u, Rational::new(5, 1));
    }

    #[test]
    fn unfold_by_one_is_isomorphic() {
        let g = cycle(2, 3, 2);
        let u = unfold(&g, 1);
        assert_eq!(u.num_actors(), g.num_actors());
        assert_eq!(u.num_channels(), g.num_channels());
        assert_eq!(
            throughput(&u).unwrap().period(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_unfold_panics() {
        let g = cycle(1, 1, 1);
        let _ = unfold(&g, 0);
    }

    #[test]
    fn multirate_edges_carried_through() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 3, 6).unwrap();
        let g = b.build().unwrap();
        let u = unfold(&g, 2);
        for (_, c) in u.channels() {
            assert_eq!((c.production(), c.consumption()), (2, 3));
        }
        assert_eq!(u.total_initial_tokens(), 6);
    }
}

//! The classical SDF→HSDF conversion (Lee & Messerschmitt 1987; Sriram &
//! Bhattacharyya 2000).
//!
//! Every actor `a` is duplicated `γ(a)` times — one copy per firing in an
//! iteration — so the resulting homogeneous graph has exactly
//! `Σ_a γ(a)` actors (the "traditional conversion" column of the paper's
//! Table 1). Dependencies are derived token-by-token: the `k`-th token
//! consumed by firing `l` of `b` was produced by a specific firing of `a`
//! (possibly in an earlier iteration, contributing edge delay).
//!
//! Timing corresponds one-to-one: firing `n·γ(a) + k` of `a` in the
//! original graph is firing `n` of copy `a_k` in the conversion.

use std::collections::HashMap;

use sdfr_analysis::AnalysisSession;
use sdfr_graph::budget::{Budget, BudgetMeter};
use sdfr_graph::repetition::{repetition_vector, RepetitionVector};
use sdfr_graph::{ActorId, SdfError, SdfGraph};

/// The result of the classical conversion.
#[derive(Debug, Clone)]
pub struct TraditionalConversion {
    /// The homogeneous graph.
    pub graph: SdfGraph,
    /// `copies[a][k]` is the HSDF actor for firing `k` (within an
    /// iteration) of original actor `a`.
    pub copies: Vec<Vec<ActorId>>,
}

impl TraditionalConversion {
    /// The HSDF actor modelling firing `k` (0-based, within one iteration)
    /// of original actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an actor of the original graph or `k ≥ γ(a)`.
    pub fn copy(&self, a: ActorId, k: u64) -> ActorId {
        self.copies[a.index()][k as usize]
    }
}

/// Converts `g` to an equivalent HSDF graph by actor duplication.
///
/// Parallel derived edges between the same pair of copies are merged,
/// keeping the smallest delay (the others are redundant constraints), so
/// the edge count stays manageable; the actor count is exactly `Σγ`.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if `g` has no repetition vector,
/// - [`SdfError::Overflow`] if `Σγ` exceeds practical bounds.
///
/// # Example
///
/// ```
/// use sdfr_core::traditional::convert;
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("updown");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 1);
/// b.channel(x, y, 2, 3, 0)?;
/// b.channel(y, x, 3, 2, 6)?;
/// let g = b.build()?;
/// let conv = convert(&g)?;
/// assert_eq!(conv.graph.num_actors(), 5); // γ = (3, 2)
/// assert!(conv.graph.is_homogeneous());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn convert(g: &SdfGraph) -> Result<TraditionalConversion, SdfError> {
    let budget = Budget::unlimited();
    let mut meter = budget.meter();
    convert_metered(g, &mut meter)
}

/// [`convert`] under a resource [`Budget`].
///
/// The conversion materialises `Σγ(a)` actors — potentially exponential in
/// the graph description — so the repetition-vector sum is validated against
/// both the firing cap and the size cap *before* any copy is allocated;
/// the derived-edge enumeration then charges one step per target firing.
///
/// # Errors
///
/// As [`convert`], plus [`SdfError::Exhausted`] when the budget refuses the
/// expansion or runs out mid-way.
pub fn convert_with_budget(
    g: &SdfGraph,
    budget: &Budget,
) -> Result<TraditionalConversion, SdfError> {
    let mut meter = budget.meter();
    convert_metered(g, &mut meter)
}

/// [`convert`] charging an existing [`BudgetMeter`], for pipelines that
/// account several phases against one budget.
///
/// # Errors
///
/// See [`convert_with_budget`].
pub fn convert_metered(
    g: &SdfGraph,
    meter: &mut BudgetMeter<'_>,
) -> Result<TraditionalConversion, SdfError> {
    let gamma = repetition_vector(g)?;
    convert_with_gamma(g, &gamma, meter)
}

/// [`convert`] on an [`AnalysisSession`]: reuses the session's cached
/// repetition vector and charges the expansion to the session budget.
///
/// # Errors
///
/// See [`convert_with_budget`].
pub fn convert_with_session(session: &AnalysisSession) -> Result<TraditionalConversion, SdfError> {
    let gamma = session.repetition_vector()?;
    session.with_meter(|m| convert_with_gamma(session.graph(), gamma, m))
}

/// [`convert_metered`] with a precomputed repetition vector, the shared
/// backend of the free-function and session entry points.
fn convert_with_gamma(
    g: &SdfGraph,
    gamma: &RepetitionVector,
    meter: &mut BudgetMeter<'_>,
) -> Result<TraditionalConversion, SdfError> {
    let total = g
        .actor_ids()
        .try_fold(0u64, |s, a| s.checked_add(gamma.get(a)))
        .ok_or(SdfError::Overflow {
            what: "HSDF actor count (sum of repetition vector)",
        })?;
    // The expanded graph holds one actor per firing: the repetition sum is
    // both the work and the state size of this conversion.
    meter.check_size(total)?;
    meter.precheck(total)?;
    let mut b = SdfGraph::builder(format!("{}^hsdf", g.name()));

    let copies: Vec<Vec<ActorId>> = g
        .actors()
        .map(|(aid, a)| {
            (0..gamma.get(aid))
                .map(|k| b.actor(format!("{}#{}", a.name(), k), a.execution_time()))
                .collect()
        })
        .collect();

    // Derived edges, deduplicated per copy pair keeping the minimum delay.
    let mut derived: HashMap<(ActorId, ActorId), u64> = HashMap::new();
    let mut order: Vec<(ActorId, ActorId)> = Vec::new();
    for (_, ch) in g.channels() {
        let (p, c, d) = (
            ch.production() as i64,
            ch.consumption() as i64,
            ch.initial_tokens() as i64,
        );
        let gamma_src = gamma.get(ch.source()) as i64;
        let gamma_dst = gamma.get(ch.target());
        for l in 0..gamma_dst as i64 {
            // One derived-edge computation per target firing per channel.
            meter.spend(1)?;
            // Firing `l` of the target consumes the contiguous token range
            // [l·c − d, l·c + c − 1 − d]; the producing firings of the
            // source form the contiguous range below (negative = initial
            // token, produced by an earlier iteration). Iterating over
            // producing firings rather than tokens keeps the cost at
            // O(firings + tokens/p) instead of O(tokens).
            let f_lo = (l * c - d).div_euclid(p);
            let f_hi = (l * c + c - 1 - d).div_euclid(p);
            for f in f_lo..=f_hi {
                let j = f.rem_euclid(gamma_src);
                let m = f.div_euclid(gamma_src); // iteration offset (≤ 0 ok)
                let delay = u64::try_from(-m).map_err(|_| SdfError::Overflow {
                    what: "HSDF edge delay",
                })?;
                let src = copies[ch.source().index()][j as usize];
                let dst = copies[ch.target().index()][l as usize];
                match derived.get_mut(&(src, dst)) {
                    None => {
                        derived.insert((src, dst), delay);
                        order.push((src, dst));
                    }
                    Some(existing) => *existing = (*existing).min(delay),
                }
            }
        }
    }
    for key @ (src, dst) in order {
        b.channel(src, dst, 1, 1, derived[&key])
            .expect("copy ids are valid");
    }

    Ok(TraditionalConversion {
        graph: b.build().expect("construction is valid"),
        copies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::{hsdf_period, throughput};

    #[test]
    fn homogeneous_graph_is_isomorphic() {
        let mut b = SdfGraph::builder("h");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 2);
        assert_eq!(conv.graph.num_channels(), 2);
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn actor_count_is_repetition_sum() {
        // CD-to-DAT: γ = (147, 147, 98, 28, 32, 160), Σ = 612 — the
        // "sample rate conv." row of Table 1.
        let mut b = SdfGraph::builder("cd2dat");
        let ids: Vec<_> = (0..6).map(|i| b.actor(format!("a{i}"), 1)).collect();
        let rates = [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)];
        for (i, (p, c)) in rates.iter().enumerate() {
            b.channel(ids[i], ids[i + 1], *p, *c, 0).unwrap();
        }
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 612);
        assert!(conv.graph.is_homogeneous());
    }

    #[test]
    fn intra_iteration_dependencies() {
        // x produces 2, y consumes 1: y#0 and y#1 both read from x#0.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 3);
        let x0 = conv.copy(x, 0);
        for k in 0..2 {
            let yk = conv.copy(y, k);
            assert!(conv
                .graph
                .outgoing(x0)
                .iter()
                .any(|&c| conv.graph.channel(c).target() == yk
                    && conv.graph.channel(c).initial_tokens() == 0));
        }
    }

    #[test]
    fn initial_tokens_become_inter_iteration_delays() {
        // One token on a homogeneous self-loop: copy depends on itself one
        // iteration earlier.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        let (_, ch) = conv.graph.channels().next().unwrap();
        assert_eq!(ch.initial_tokens(), 1);
        assert!(ch.is_self_loop());
    }

    #[test]
    fn multi_iteration_delays() {
        // d = 5 tokens, rates 1:1, γ = 1: firing n depends on firing n−5,
        // i.e. a self-edge with delay 5.
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 5).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        let (_, ch) = conv.graph.channels().next().unwrap();
        assert_eq!(ch.initial_tokens(), 5);
    }

    #[test]
    fn multirate_throughput_preserved() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 3);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 5);
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn paper_fig3_conversion() {
        // Fig. 3 of the paper: left fires twice, right once: 3 HSDF actors.
        let mut b = SdfGraph::builder("fig3");
        let l = b.actor("left", 3);
        let r = b.actor("right", 1);
        b.channel(l, r, 1, 2, 0).unwrap();
        b.channel(r, l, 2, 1, 2).unwrap();
        b.channel(l, l, 1, 1, 1).unwrap();
        b.channel(r, r, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 3);
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn budget_refuses_exponential_expansion_before_allocating() {
        use std::time::Instant;
        // Σγ = 1e9 + 1: unbudgeted expansion would OOM; the budgeted one
        // must refuse instantly, before building any copies.
        let mut b = SdfGraph::builder("huge");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1_000_000_000, 1, 0).unwrap();
        let g = b.build().unwrap();
        let budget = Budget::unlimited().with_max_size(1_000_000);
        let t0 = Instant::now();
        assert!(matches!(
            convert_with_budget(&g, &budget),
            Err(SdfError::Exhausted { .. })
        ));
        assert!(t0.elapsed().as_millis() < 1000, "must fail fast");
        // An adequate budget converts normally.
        let mut b = SdfGraph::builder("small");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap();
        let g = b.build().unwrap();
        let conv = convert_with_budget(&g, &Budget::unlimited().with_max_size(16)).unwrap();
        assert_eq!(conv.graph.num_actors(), 3);
    }

    #[test]
    fn deadlock_free_conversion_of_live_graph_is_live() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 1, 2, 1).unwrap();
        b.channel(y, x, 2, 1, 1).unwrap();
        let g = b.build().unwrap();
        assert!(sdfr_graph::liveness::is_live(&g));
        let conv = convert(&g).unwrap();
        assert!(sdfr_graph::liveness::is_live(&conv.graph));
    }
}

//! The novel compact SDF→HSDF conversion (paper, Sec. 6, Alg. 1, Fig. 4).
//!
//! From the max-plus matrix `A` of one symbolic iteration
//! ([`sdfr_analysis::symbolic`]), build an HSDF graph over the `N` initial
//! tokens rather than over the `Σγ` firings:
//!
//! - for every finite entry `A[k][j]` a *coefficient actor* `m_{j,k}` with
//!   execution time `A[k][j]`, enforcing the minimum distance from the
//!   previous value of token `j` to the next value of token `k`;
//! - a *demultiplexor* `d_j` (execution time 0) fanning token `j` out to its
//!   coefficient actors — elided when the token has at most one consumer
//!   (the gray actors of Fig. 4);
//! - a *multiplexor* `u_k` (execution time 0) synchronising the coefficient
//!   actors producing token `k` — likewise elided for a single producer;
//! - one initial token per recirculation edge, closing the loop from the
//!   producer side of token `k` back to its consumer side.
//!
//! The result has at most `N(N+2)` actors, `N(2N+1)` edges and `N` tokens,
//! and its iteration period (maximum cycle ratio) equals the original
//! graph's — it is *throughput-equivalent* rather than firing-for-firing
//! equivalent like the traditional conversion. Specific firings of interest
//! (e.g. an output actor) can be re-attached with
//! [`convert_with_observers`].

use sdfr_analysis::symbolic::{symbolic_iteration, symbolic_iteration_metered, SymbolicIteration};
use sdfr_analysis::AnalysisSession;
use sdfr_graph::budget::{Budget, BudgetMeter};
use sdfr_graph::{ActorId, SdfError, SdfGraph};
use sdfr_maxplus::{Mp, MpMatrix};

/// Statistics of a conversion, for Table-1 style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConversionStats {
    /// Number of actors of the produced HSDF graph.
    pub actors: usize,
    /// Number of channels.
    pub channels: usize,
    /// Number of initial tokens.
    pub tokens: u64,
}

/// The result of the novel conversion.
#[derive(Debug, Clone)]
pub struct NovelConversion {
    /// The homogeneous graph.
    pub graph: SdfGraph,
    /// The symbolic iteration (matrix and token table) it was built from.
    pub symbolic: SymbolicIteration,
    /// For every token `k`: the HSDF actors observing the original actor
    /// firings requested via [`convert_with_observers`], by
    /// `(original actor, firing index)`.
    pub observers: Vec<(ActorId, u64, ActorId)>,
}

impl NovelConversion {
    /// Size statistics of the produced graph.
    pub fn stats(&self) -> ConversionStats {
        ConversionStats {
            actors: self.graph.num_actors(),
            channels: self.graph.num_channels(),
            tokens: self.graph.total_initial_tokens(),
        }
    }

    /// The paper's worst-case actor bound `N(N+2)` for this instance.
    pub fn actor_bound(&self) -> usize {
        let n = self.symbolic.num_tokens();
        n * (n + 2)
    }

    /// The paper's worst-case edge bound `N(2N+1)` for this instance.
    pub fn edge_bound(&self) -> usize {
        let n = self.symbolic.num_tokens();
        n * (2 * n + 1)
    }
}

/// Converts `g` into a compact throughput-equivalent HSDF graph.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if `g` has no repetition vector,
/// - [`SdfError::Deadlock`] if an iteration cannot execute.
///
/// # Example
///
/// ```
/// use sdfr_core::novel::convert;
/// use sdfr_graph::SdfGraph;
///
/// let mut b = SdfGraph::builder("updown");
/// let x = b.actor("x", 1);
/// let y = b.actor("y", 2);
/// b.channel(x, y, 2, 3, 0)?;
/// b.channel(y, x, 3, 2, 6)?;
/// let g = b.build()?;
/// let conv = convert(&g)?;
/// assert!(conv.graph.is_homogeneous());
/// assert!(conv.graph.num_actors() <= conv.actor_bound());
/// assert!(conv.graph.num_channels() <= conv.edge_bound());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn convert(g: &SdfGraph) -> Result<NovelConversion, SdfError> {
    convert_with_session(&AnalysisSession::new(g.clone()))
}

/// [`convert`] on an [`AnalysisSession`], reusing its cached symbolic
/// iteration (and caching it for later analyses if absent) instead of
/// re-executing the graph. Any budget attached to the session applies.
///
/// # Errors
///
/// See [`convert`] and the session's budget semantics.
pub fn convert_with_session(session: &AnalysisSession) -> Result<NovelConversion, SdfError> {
    let sym = session.symbolic()?.clone();
    Ok(build(session.graph(), sym, &[], true))
}

/// [`convert`] under a resource [`Budget`].
///
/// The symbolic iteration performs `Σγ(a)` firings (charged against the
/// firing cap and deadline); the token count `N` — which determines the
/// `O(N²)` output structure — is validated against the size cap before the
/// matrix is built.
///
/// # Errors
///
/// As [`convert`], plus [`SdfError::Exhausted`] when the budget runs out.
pub fn convert_with_budget(g: &SdfGraph, budget: &Budget) -> Result<NovelConversion, SdfError> {
    let mut meter = budget.meter();
    convert_metered(g, &mut meter)
}

/// [`convert`] charging an existing [`BudgetMeter`], for pipelines that
/// account several phases against one budget.
///
/// # Errors
///
/// See [`convert_with_budget`].
pub fn convert_metered(
    g: &SdfGraph,
    meter: &mut BudgetMeter<'_>,
) -> Result<NovelConversion, SdfError> {
    let sym = symbolic_iteration_metered(g, meter)?;
    meter.poll()?;
    Ok(build(g, sym, &[], true))
}

/// [`convert`] without the mux/demux elision optimization: every token gets
/// both its multiplexor and demultiplexor, as in the unoptimized Fig. 4
/// structure (exactly `2N` (de)mux actors plus one coefficient actor per
/// finite matrix entry, plus sources). Used by the elision ablation bench;
/// the result is throughput-equivalent to [`convert`]'s.
///
/// # Errors
///
/// See [`convert`].
pub fn convert_without_elision(g: &SdfGraph) -> Result<NovelConversion, SdfError> {
    let sym = symbolic_iteration(g)?;
    Ok(build(g, sym, &[], false))
}

/// Converts `g`, additionally wiring one *observer actor* per requested
/// `(actor, firing)` pair: an HSDF actor with the original execution time
/// whose firing times in the converted graph reproduce the corresponding
/// firing of the original graph exactly (paper, Sec. 6: "straightforward to
/// include this information").
///
/// # Errors
///
/// See [`convert`]; additionally returns [`SdfError::UnknownActor`] for an
/// observer actor outside the graph and [`SdfError::FiringOutOfRange`] for
/// a firing index `≥ γ(actor)`.
pub fn convert_with_observers(
    g: &SdfGraph,
    observers: &[(ActorId, u64)],
) -> Result<NovelConversion, SdfError> {
    convert_with_observers_session(&AnalysisSession::new(g.clone()), observers)
}

/// [`convert_with_observers`] on an [`AnalysisSession`], reusing (or
/// caching) its stamp-recording symbolic iteration.
///
/// # Errors
///
/// See [`convert_with_observers`].
pub fn convert_with_observers_session(
    session: &AnalysisSession,
    observers: &[(ActorId, u64)],
) -> Result<NovelConversion, SdfError> {
    let g = session.graph();
    let gamma = session.repetition_vector()?;
    for &(actor, firing) in observers {
        if actor.index() >= g.num_actors() {
            return Err(SdfError::UnknownActor {
                actor,
                num_actors: g.num_actors(),
            });
        }
        let limit = gamma.get(actor);
        if firing >= limit {
            return Err(SdfError::FiringOutOfRange {
                actor,
                firing,
                gamma: limit,
            });
        }
    }
    let sym = session.symbolic_with_stamps()?.clone();
    Ok(build(g, sym, observers, true))
}

fn build(
    g: &SdfGraph,
    sym: SymbolicIteration,
    observers: &[(ActorId, u64)],
    elide: bool,
) -> NovelConversion {
    let a: &MpMatrix = &sym.matrix;
    let n = sym.num_tokens();
    let mut b = SdfGraph::builder(format!("{}^mp-hsdf", g.name()));

    // Fan-out (consumers of token j = finite entries in column j, plus
    // observers) and fan-in (producers of token k = finite entries in row k)
    // determine which (de)multiplexors are needed.
    let mut consumers: Vec<usize> = (0..n).map(|j| a.column(j).finite_count()).collect();
    let producers: Vec<usize> = (0..n).map(|k| a.row(k).finite_count()).collect();
    for &(actor, firing) in observers {
        // Invariant: callers passing observers use the stamp-recording
        // symbolic iteration (convert_with_observers validates indices).
        let stamps = sym
            .firing_stamps
            .as_ref()
            .expect("observer conversion records stamps");
        let (start, _) = &stamps[actor.index()][firing as usize];
        for j in 0..n {
            if start[j].is_finite() {
                consumers[j] += 1;
            }
        }
    }

    // Demultiplexors and multiplexors where fan-out / fan-in exceeds 1
    // (or unconditionally, when elision is disabled for the ablation).
    let need_demux = |j: usize| consumers[j] > 1 || (!elide && consumers[j] > 0);
    let need_mux = |k: usize| producers[k] > 1 || (!elide && producers[k] > 0);
    let demux: Vec<Option<ActorId>> = (0..n)
        .map(|j| need_demux(j).then(|| b.actor(format!("d{j}"), 0)))
        .collect();
    let mux: Vec<Option<ActorId>> = (0..n)
        .map(|k| need_mux(k).then(|| b.actor(format!("u{k}"), 0)))
        .collect();

    // Coefficient actors m_{j,k} for finite A[k][j].
    let mut coeff: Vec<Vec<Option<ActorId>>> = vec![vec![None; n]; n];
    for k in 0..n {
        for (j, row) in coeff.iter_mut().enumerate() {
            if let Mp::Fin(t) = a.get(k, j) {
                row[k] = Some(b.actor(format!("m{j}_{k}"), t));
            }
        }
    }

    // Sources for tokens nobody produces (all-−∞ rows with consumers):
    // their next value has no dependency, modelled by a free-running
    // zero-time source.
    let sources: Vec<Option<ActorId>> = (0..n)
        .map(|k| (producers[k] == 0 && consumers[k] > 0).then(|| b.actor(format!("s{k}"), 0)))
        .collect();

    // Wiring: d_j → m_{j,k} → u_k, with elision of single-purpose (de)muxes.
    for j in 0..n {
        for k in 0..n {
            let Some(m) = coeff[j][k] else { continue };
            if let Some(d) = demux[j] {
                b.homogeneous_channel(d, m, 0).expect("valid ids");
            }
            if let Some(u) = mux[k] {
                b.homogeneous_channel(m, u, 0).expect("valid ids");
            }
        }
    }

    // Recirculation edges carrying the N initial tokens: from the producer
    // side of token k to its consumer side.
    for k in 0..n {
        if consumers[k] == 0 {
            // The token is never consumed; it imposes no constraint.
            continue;
        }
        let producer_side: ActorId = match (mux[k], sources[k]) {
            (Some(u), _) => u,
            (None, Some(s)) => s,
            (None, None) => {
                // Exactly one producer coefficient actor in row k.
                let j = (0..n)
                    .find(|&j| coeff[j][k].is_some())
                    .expect("row k has exactly one finite entry");
                coeff[j][k].expect("just found")
            }
        };
        match demux[k] {
            Some(d) => {
                b.homogeneous_channel(producer_side, d, 1).expect("ids");
            }
            None => {
                // Exactly one consumer: the coefficient actor of column k.
                let kk = (0..n)
                    .find(|&kk| coeff[k][kk].is_some())
                    .expect("column k has exactly one finite entry");
                let m = coeff[k][kk].expect("just found");
                b.homogeneous_channel(producer_side, m, 1).expect("ids");
            }
        }
    }

    // Observer actors: consume (a copy of) every token their firing's start
    // stamp depends on, with the firing's execution time.
    let mut observer_ids = Vec::with_capacity(observers.len());
    for &(actor, firing) in observers {
        // Invariant: same as above — stamps exist whenever observers do.
        let stamps = sym
            .firing_stamps
            .as_ref()
            .expect("observer conversion records stamps");
        let (start, _) = &stamps[actor.index()][firing as usize];
        let name = format!("obs_{}_{}", g.actor(actor).name(), firing);
        let obs = b.actor(name, g.actor(actor).execution_time());
        for j in 0..n {
            if let Mp::Fin(t) = start[j] {
                // The observed firing starts at max_j (x_j + t_j); a
                // zero-time shaper actor delays token j's copy by the
                // coefficient before the observer synchronises on it.
                let feeder = if t == 0 {
                    None
                } else {
                    Some(b.actor(
                        format!("obs_{}_{}_in{}", g.actor(actor).name(), firing, j),
                        t,
                    ))
                };
                let d = demux[j].expect("observer consumers force a demux");
                match feeder {
                    None => {
                        b.homogeneous_channel(d, obs, 0).expect("ids");
                    }
                    Some(f) => {
                        b.homogeneous_channel(d, f, 0).expect("ids");
                        b.homogeneous_channel(f, obs, 0).expect("ids");
                    }
                }
            }
        }
        observer_ids.push((actor, firing, obs));
    }

    NovelConversion {
        graph: b.build().expect("construction is valid"),
        symbolic: sym,
        observers: observer_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::{hsdf_period, throughput};
    use sdfr_graph::execution::{simulate, SimulationOptions};
    use sdfr_maxplus::Rational;

    fn updown() -> SdfGraph {
        let mut b = SdfGraph::builder("updown");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn size_bounds_hold() {
        let g = updown();
        let conv = convert(&g).unwrap();
        let n = conv.symbolic.num_tokens();
        assert_eq!(n, 6);
        assert!(conv.stats().actors <= conv.actor_bound());
        assert!(conv.stats().channels <= conv.edge_bound());
        assert_eq!(conv.stats().tokens, 6);
        assert!(conv.graph.is_homogeneous());
    }

    #[test]
    fn throughput_equivalent_to_original() {
        let g = updown();
        let conv = convert(&g).unwrap();
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn simple_cycle_collapses_to_tiny_graph() {
        // Two actors, one token: N = 1, so the result is a single
        // coefficient actor with a one-token self-loop.
        let mut b = SdfGraph::builder("c");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(conv.graph.num_actors(), 1);
        assert_eq!(conv.graph.num_channels(), 1);
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            Some(Rational::new(5, 1))
        );
    }

    #[test]
    fn mux_demux_elision() {
        // A 2-token ring where each token has exactly one producer and one
        // consumer: no muxes or demuxes at all.
        let mut b = SdfGraph::builder("ring2");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 1).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        for (_, a) in conv.graph.actors() {
            assert!(
                a.name().starts_with('m'),
                "only coefficient actors expected, found {}",
                a.name()
            );
        }
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn dead_token_dropped() {
        // A token on a channel into a sink that never feeds back: consumed
        // and reproduced... here: a pure source token never consumed again.
        let mut b = SdfGraph::builder("g");
        let s = b.actor("s", 1);
        let t = b.actor("t", 2);
        b.channel(s, t, 1, 1, 0).unwrap();
        b.channel(t, t, 1, 1, 1).unwrap(); // serialize t
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        // N = 1; the self-loop token has one producer (itself) and one
        // consumer: a single coefficient actor with T(t) = 2.
        assert_eq!(conv.graph.num_actors(), 1);
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            Some(Rational::new(2, 1))
        );
    }

    #[test]
    fn source_token_modelled_as_free_running() {
        // A token whose next value depends on no initial token (all-−∞
        // row) but which *is* consumed: the conversion needs a free-running
        // source actor on its producer side.
        let mut b = SdfGraph::builder("g");
        let src = b.actor("src", 4);
        let t = b.actor("t", 1);
        b.channel(src, t, 1, 1, 1).unwrap(); // token 0: reproduced by src
        b.channel(t, t, 1, 1, 1).unwrap(); // token 1: serializes t
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert!(conv.graph.actors().any(|(_, a)| a.name() == "s0"));
        // The only recurrent constraint is t's self-loop: period T(t) = 1.
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
        assert_eq!(throughput(&g).unwrap().period(), Some(Rational::new(1, 1)));
    }

    #[test]
    fn observer_reproduces_firing_times() {
        // Compare the observed firing's completion times in the converted
        // graph against the original actor's firings in simulation.
        let g = updown();
        let y = g.actor_by_name("y").unwrap();
        let conv = convert_with_observers(&g, &[(y, 0), (y, 1)]).unwrap();
        assert_eq!(conv.observers.len(), 2);

        // Simulate both graphs and compare the completion times of the
        // observed firings over several iterations.
        let iters = 8u64;
        let orig = simulate(&g, &SimulationOptions::iterations(iters).with_firings()).unwrap();
        let orig_firings = &orig.firings.as_ref().unwrap()[y.index()];
        let conv_trace = simulate(
            &conv.graph,
            &SimulationOptions::iterations(iters).with_firings(),
        )
        .unwrap();
        let gamma_y = 2usize; // γ(y) = 2 in updown()
        for &(_, firing, obs) in &conv.observers {
            let obs_firings = &conv_trace.firings.as_ref().unwrap()[obs.index()];
            for it in 0..iters as usize {
                let original_end = orig_firings[it * gamma_y + firing as usize].1;
                let observed_end = obs_firings[it].1;
                assert_eq!(
                    observed_end, original_end,
                    "firing {firing} of iteration {it}"
                );
            }
        }
    }

    #[test]
    fn multirate_chain_with_back_edge() {
        let mut b = SdfGraph::builder("chain");
        let x = b.actor("x", 5);
        let y = b.actor("y", 3);
        let z = b.actor("z", 2);
        b.channel(x, y, 2, 1, 0).unwrap();
        b.channel(y, z, 1, 2, 0).unwrap();
        b.channel(z, x, 2, 2, 2).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        assert_eq!(
            hsdf_period(&conv.graph).unwrap().finite(),
            throughput(&g).unwrap().period()
        );
        assert!(conv.stats().actors <= conv.actor_bound());
    }

    #[test]
    fn elision_ablation_preserves_throughput() {
        for g in [updown(), {
            let mut b = SdfGraph::builder("ring2");
            let x = b.actor("x", 2);
            let y = b.actor("y", 3);
            b.channel(x, y, 1, 1, 1).unwrap();
            b.channel(y, x, 1, 1, 1).unwrap();
            b.build().unwrap()
        }] {
            let with = convert(&g).unwrap();
            let without = convert_without_elision(&g).unwrap();
            assert!(without.graph.num_actors() >= with.graph.num_actors());
            assert!(without.graph.num_actors() <= without.actor_bound());
            assert_eq!(
                hsdf_period(&with.graph).unwrap().finite(),
                hsdf_period(&without.graph).unwrap().finite(),
                "{}",
                g.name()
            );
        }
    }

    #[test]
    fn observer_indices_validated() {
        let g = updown();
        let y = g.actor_by_name("y").unwrap(); // γ(y) = 2
        assert!(matches!(
            convert_with_observers(&g, &[(y, 2)]),
            Err(SdfError::FiringOutOfRange {
                firing: 2,
                gamma: 2,
                ..
            })
        ));
        let ghost = ActorId::from_index(99);
        assert!(matches!(
            convert_with_observers(&g, &[(ghost, 0)]),
            Err(SdfError::UnknownActor { .. })
        ));
    }

    #[test]
    fn budget_bounds_novel_conversion() {
        let g = updown(); // Σγ = 3 + 2 = 5, N = 6
        let tight = Budget::unlimited().with_max_firings(2);
        assert!(matches!(
            convert_with_budget(&g, &tight),
            Err(SdfError::Exhausted { .. })
        ));
        let sized = Budget::unlimited().with_max_size(5); // N = 6 > 5
        assert!(matches!(
            convert_with_budget(&g, &sized),
            Err(SdfError::Exhausted { .. })
        ));
        let ample = Budget::unlimited().with_max_firings(100).with_max_size(6);
        let conv = convert_with_budget(&g, &ample).unwrap();
        assert_eq!(
            conv.graph.num_actors(),
            convert(&g).unwrap().graph.num_actors()
        );
    }

    #[test]
    fn deadlock_propagates() {
        let mut b = SdfGraph::builder("dead");
        let x = b.actor("x", 1);
        b.channel(x, x, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(convert(&g), Err(SdfError::Deadlock { .. })));
    }

    #[test]
    fn compare_against_traditional_on_multirate() {
        // The headline effect: the novel conversion is much smaller when Σγ
        // is large but the graph carries few initial tokens (N = 2 here).
        let mut b = SdfGraph::builder("big");
        let x = b.actor("x", 10);
        let y = b.actor("y", 1);
        b.channel(x, y, 64, 1, 0).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        b.channel(y, y, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let trad = crate::traditional::convert(&g).unwrap();
        let novel = convert(&g).unwrap();
        assert_eq!(trad.graph.num_actors(), 65); // γ = (1, 64)
        assert!(novel.graph.num_actors() <= 8); // ≤ N(N+2) with N = 2
        assert_eq!(
            hsdf_period(&novel.graph).unwrap().finite(),
            hsdf_period(&trad.graph).unwrap().finite()
        );
        assert_eq!(
            hsdf_period(&novel.graph).unwrap().finite(),
            Some(Rational::new(64, 1))
        );
    }
}

/// Builds the Fig. 4 HSDF structure directly from an arbitrary max-plus
/// matrix (with mux/demux elision), independent of any source SDF graph.
///
/// Row `k` of `matrix` is read as the symbolic time stamp of token `k`
/// after one iteration; the resulting homogeneous graph has one
/// recirculating token per consumed row and iteration period equal to the
/// matrix's eigenvalue. This is the entry point for other dataflow models
/// analysed through the same max-plus machinery (e.g. cyclo-static graphs).
///
/// # Panics
///
/// Panics if `matrix` is not square.
pub fn hsdf_from_matrix(matrix: &MpMatrix, name: &str) -> SdfGraph {
    assert!(matrix.is_square(), "iteration matrices are square");
    let n = matrix.num_rows();
    let mut b = SdfGraph::builder(name.to_string());

    let consumers: Vec<usize> = (0..n).map(|j| matrix.column(j).finite_count()).collect();
    let producers: Vec<usize> = (0..n).map(|k| matrix.row(k).finite_count()).collect();

    let demux: Vec<Option<ActorId>> = (0..n)
        .map(|j| (consumers[j] > 1).then(|| b.actor(format!("d{j}"), 0)))
        .collect();
    let mux: Vec<Option<ActorId>> = (0..n)
        .map(|k| (producers[k] > 1).then(|| b.actor(format!("u{k}"), 0)))
        .collect();
    let mut coeff: Vec<Vec<Option<ActorId>>> = vec![vec![None; n]; n];
    for k in 0..n {
        for (j, row) in coeff.iter_mut().enumerate() {
            if let Mp::Fin(t) = matrix.get(k, j) {
                row[k] = Some(b.actor(format!("m{j}_{k}"), t));
            }
        }
    }
    let sources: Vec<Option<ActorId>> = (0..n)
        .map(|k| (producers[k] == 0 && consumers[k] > 0).then(|| b.actor(format!("s{k}"), 0)))
        .collect();

    for j in 0..n {
        for k in 0..n {
            let Some(m) = coeff[j][k] else { continue };
            if let Some(d) = demux[j] {
                b.homogeneous_channel(d, m, 0).expect("valid ids");
            }
            if let Some(u) = mux[k] {
                b.homogeneous_channel(m, u, 0).expect("valid ids");
            }
        }
    }
    for k in 0..n {
        if consumers[k] == 0 {
            continue;
        }
        let producer_side = match (mux[k], sources[k]) {
            (Some(u), _) => u,
            (None, Some(s)) => s,
            (None, None) => {
                let j = (0..n)
                    .find(|&j| coeff[j][k].is_some())
                    .expect("row k has exactly one finite entry");
                coeff[j][k].expect("just found")
            }
        };
        match demux[k] {
            Some(d) => {
                b.homogeneous_channel(producer_side, d, 1).expect("ids");
            }
            None => {
                let kk = (0..n)
                    .find(|&kk| coeff[k][kk].is_some())
                    .expect("column k has exactly one finite entry");
                b.homogeneous_channel(producer_side, coeff[k][kk].expect("just found"), 1)
                    .expect("ids");
            }
        }
    }
    b.build().expect("construction is valid")
}

#[cfg(test)]
mod matrix_entry_tests {
    use super::*;
    use sdfr_analysis::throughput::hsdf_period;
    use sdfr_maxplus::Rational;

    #[test]
    fn matrix_realization_has_matrix_eigenvalue() {
        let m = MpMatrix::from_rows(vec![
            vec![Mp::fin(2), Mp::fin(8)],
            vec![Mp::fin(1), Mp::fin(3)],
        ])
        .unwrap();
        let g = hsdf_from_matrix(&m, "m");
        assert!(g.is_homogeneous());
        assert_eq!(hsdf_period(&g).unwrap().finite(), m.eigenvalue());
    }

    #[test]
    fn agrees_with_the_sdf_conversion_path() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 1);
        let y = b.actor("y", 2);
        b.channel(x, y, 2, 3, 0).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        let g = b.build().unwrap();
        let conv = convert(&g).unwrap();
        let direct = hsdf_from_matrix(&conv.symbolic.matrix, "direct");
        assert_eq!(direct.num_actors(), conv.graph.num_actors());
        assert_eq!(
            hsdf_period(&direct).unwrap().finite(),
            hsdf_period(&conv.graph).unwrap().finite()
        );
    }

    #[test]
    fn eigenvalueless_matrix_realizes_acyclic() {
        let m = MpMatrix::from_rows(vec![
            vec![Mp::NEG_INF, Mp::NEG_INF],
            vec![Mp::fin(3), Mp::NEG_INF],
        ])
        .unwrap();
        let g = hsdf_from_matrix(&m, "m");
        assert_eq!(hsdf_period(&g).unwrap().finite(), None);
        assert_eq!(m.eigenvalue(), None);
    }

    #[test]
    fn fractional_eigenvalue() {
        let m = MpMatrix::from_rows(vec![
            vec![Mp::NEG_INF, Mp::NEG_INF, Mp::fin(2)],
            vec![Mp::fin(3), Mp::NEG_INF, Mp::NEG_INF],
            vec![Mp::NEG_INF, Mp::fin(2), Mp::NEG_INF],
        ])
        .unwrap();
        let g = hsdf_from_matrix(&m, "m");
        assert_eq!(hsdf_period(&g).unwrap().finite(), Some(Rational::new(7, 3)));
    }
}

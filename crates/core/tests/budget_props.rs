//! Property and regression tests for the resource-budget layer.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! - a random consistent graph analysed under a budget `B` either completes
//!   or returns a structured [`SdfError::Exhausted`] — it never panics and
//!   never does more than ~2×`B` units of work (the schedule and the firing
//!   loop each charge up to `Σγ`, so the meter legitimately reads ≤ 2×`B`);
//! - the pathological two-actor graph with repetition sum ≥ 10^9 returns
//!   `Exhausted` in well under a second for both a firing cap and a
//!   wall-clock deadline, and the degradation path still produces a
//!   conservative period bound instead of hanging, panicking or OOM-ing.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use sdfr_analysis::throughput::{throughput, throughput_with_budget};
use sdfr_core::degrade::{analyze_with_budget, AnalysisOutcome};
use sdfr_graph::budget::{Budget, BudgetResource};
use sdfr_graph::{SdfError, SdfGraph};

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A randomly shaped but always-consistent graph: a ring of `n` actors
/// whose channel rates are derived from a per-actor firing count `q`, so
/// every balance equation `q(src)·prod = q(dst)·cons` holds by
/// construction. Deadlock is possible (tokens are random); inconsistency
/// is not.
#[derive(Debug, Clone)]
struct RandomGraph {
    exec: Vec<i64>,
    q: Vec<u64>,
    tokens: Vec<u64>,
}

impl RandomGraph {
    fn build(&self) -> SdfGraph {
        let n = self.q.len();
        let mut b = SdfGraph::builder("random");
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("a{i}"), self.exec[i]))
            .collect();
        for i in 0..n {
            let j = (i + 1) % n;
            let g = gcd(self.q[i], self.q[j]);
            b.channel(ids[i], ids[j], self.q[j] / g, self.q[i] / g, self.tokens[i])
                .expect("rates derived from q are nonzero");
        }
        b.build().expect("ring graphs are well-formed")
    }
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..=5).prop_flat_map(|n| {
        (
            proptest::collection::vec(0i64..=10, n),
            proptest::collection::vec(1u64..=4, n),
            proptest::collection::vec(0u64..=6, n),
        )
            .prop_map(|(exec, q, tokens)| RandomGraph { exec, q, tokens })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Budgeted analysis of a consistent graph either completes or reports
    /// structured exhaustion/deadlock — and the meter never records more
    /// than ~2× the firing cap.
    #[test]
    fn budgeted_analysis_completes_or_exhausts(g in random_graph(), cap in 1u64..=40) {
        let g = g.build();
        let budget = Budget::unlimited().with_max_firings(cap);
        match throughput_with_budget(&g, &budget) {
            Ok(_) => {}
            Err(SdfError::Exhausted { resource, spent, limit }) => {
                prop_assert_eq!(resource, BudgetResource::Firings);
                prop_assert_eq!(limit, cap);
                // Schedule construction + symbolic firing each charge Σγ:
                // at most 2×cap units of work before the meter trips.
                prop_assert!(spent <= 2 * cap + 2, "spent {} under cap {}", spent, cap);
            }
            Err(SdfError::Deadlock { .. }) => {} // random tokens may deadlock
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// The degradation wrapper never panics and any bound it reports
    /// dominates the true period (whenever the exact period exists).
    #[test]
    fn degraded_bounds_are_sound(g in random_graph(), cap in 1u64..=20) {
        let g = g.build();
        let budget = Budget::unlimited().with_max_firings(cap);
        match analyze_with_budget(&g, &budget) {
            Ok(AnalysisOutcome::Exact(_)) => {}
            Ok(AnalysisOutcome::Degraded { exhausted, bound }) => {
                prop_assert!(matches!(exhausted, SdfError::Exhausted { .. }));
                // These graphs are small: the unlimited analysis is cheap
                // and gives the ground truth the bound must dominate.
                if let Ok(thr) = throughput(&g) {
                    if let Some(exact) = thr.period() {
                        prop_assert!(
                            exact <= bound.bound,
                            "exact {} must be <= bound {}", exact, bound.bound
                        );
                    }
                }
            }
            Err(e) => {
                let graph_level = matches!(
                    e,
                    sdfr_core::CoreError::Graph(
                        SdfError::Deadlock { .. } | SdfError::Inconsistent { .. }
                    )
                );
                prop_assert!(graph_level, "unexpected error: {e}");
            }
        }
    }

    /// A wall-clock deadline is honoured: tiny graphs finish (exactly or
    /// degraded) long before a generous deadline expires.
    #[test]
    fn deadlines_do_not_linger(g in random_graph()) {
        let g = g.build();
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(200));
        let t0 = Instant::now();
        let _ = throughput_with_budget(&g, &budget);
        prop_assert!(t0.elapsed() < Duration::from_secs(2));
    }
}

/// Two actors, repetition sum 10^9 + 1 (`γ = (1, 10^9)`).
fn pathological() -> SdfGraph {
    let mut b = SdfGraph::builder("huge");
    let x = b.actor("x", 1);
    let y = b.actor("y", 1);
    b.channel(x, y, 1_000_000_000, 1, 0).unwrap();
    b.build().unwrap()
}

#[test]
fn pathological_graph_exhausts_firing_cap_quickly() {
    let g = pathological();
    let budget = Budget::unlimited().with_max_firings(1_000_000);
    let t0 = Instant::now();
    let err = throughput_with_budget(&g, &budget).unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
    assert!(
        matches!(
            err,
            SdfError::Exhausted {
                resource: BudgetResource::Firings,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn pathological_graph_exhausts_deadline_quickly() {
    let g = pathological();
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(100));
    let t0 = Instant::now();
    let err = throughput_with_budget(&g, &budget).unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
    assert!(
        matches!(
            err,
            SdfError::Exhausted {
                resource: BudgetResource::WallClock,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn pathological_graph_still_gets_a_conservative_bound() {
    let g = pathological();
    let budget = Budget::unlimited()
        .with_max_firings(1_000_000)
        .with_deadline(Duration::from_secs(1));
    let t0 = Instant::now();
    let outcome = analyze_with_budget(&g, &budget).unwrap();
    assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
    match outcome {
        AnalysisOutcome::Degraded { exhausted, bound } => {
            assert!(matches!(exhausted, SdfError::Exhausted { .. }));
            // γ = (1, 1e9), all execution times 1: Σ γ(a)·T(a) = 1e9 + 1.
            assert_eq!(bound.bound, 1_000_000_001i64.into());
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
}

//! Differential test corpus for [`SessionRegistry`]: the cross-graph cache
//! must be *observationally invisible*. For any batch of graphs — with
//! duplicates, across threads, under tight budgets, through evictions —
//! registry-mediated results must be byte-identical to fresh-session
//! results, hit counts must equal duplicate counts, and the symbolic
//! iteration (paper, Alg. 1) must run at most once per distinct
//! (content, budget-caps) key.

use std::sync::Arc;

use proptest::prelude::*;

use sdfr_analysis::buffer::{
    minimize_capacities, throughput_buffer_tradeoff, throughput_buffer_tradeoff_serial,
};
use sdfr_analysis::registry::{Lookup, RegistryConfig, SessionRegistry};
use sdfr_analysis::AnalysisSession;
use sdfr_graph::budget::Budget;
use sdfr_graph::{SdfError, SdfGraph};

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A randomly shaped but always-consistent ring graph (same generator as
/// `session_props.rs`): balance equations hold by construction, deadlock
/// remains possible.
#[derive(Debug, Clone)]
struct RandomGraph {
    exec: Vec<i64>,
    q: Vec<u64>,
    tokens: Vec<u64>,
}

impl RandomGraph {
    fn build(&self) -> SdfGraph {
        let n = self.q.len();
        let mut b = SdfGraph::builder("random");
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("a{i}"), self.exec[i]))
            .collect();
        for i in 0..n {
            let j = (i + 1) % n;
            let g = gcd(self.q[i], self.q[j]);
            b.channel(ids[i], ids[j], self.q[j] / g, self.q[i] / g, self.tokens[i])
                .expect("rates derived from q are nonzero");
        }
        b.build().expect("ring graphs are well-formed")
    }
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..=5).prop_flat_map(|n| {
        (
            proptest::collection::vec(0i64..=10, n),
            proptest::collection::vec(1u64..=4, n),
            proptest::collection::vec(0u64..=6, n),
        )
            .prop_map(|(exec, q, tokens)| RandomGraph { exec, q, tokens })
    })
}

/// A batch: 1–3 distinct base graphs plus a duplication pattern selecting
/// which base each unit analyses (so duplicates are *rebuilt*, not cloned —
/// exactly what a file-per-unit batch front-end sees).
fn random_batch() -> impl Strategy<Value = (Vec<RandomGraph>, Vec<usize>)> {
    (1usize..=3).prop_flat_map(|bases| {
        (
            proptest::collection::vec(random_graph(), bases),
            proptest::collection::vec(0usize..bases, 2..=8),
        )
    })
}

/// Everything `sdfr analyze` reads, rendered to a byte-comparable string.
/// Errors are part of the observable behaviour and are rendered too.
fn observe(session: &AnalysisSession) -> String {
    let period = session.throughput().map(|t| t.period());
    let matrix = session.symbolic().map(|s| format!("{:?}", s.matrix));
    let bottleneck = session.bottleneck().map(|b| format!("{b:?}"));
    let makespan = session.iteration_makespan();
    format!("{period:?}|{matrix:?}|{bottleneck:?}|{makespan:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Registry-mediated results are byte-identical to fresh-session
    /// results across the whole batch, and hit counts equal duplicate
    /// counts.
    #[test]
    fn registry_results_equal_fresh_sessions((bases, picks) in random_batch()) {
        let registry = SessionRegistry::new();
        let mut seen = std::collections::HashSet::new();
        for &pick in &picks {
            let g = Arc::new(bases[pick].build());
            let fresh = AnalysisSession::new(SdfGraph::clone(&g));
            let (cached, lookup) = registry.lookup(&g, &Budget::unlimited());
            let expected_lookup = if seen.insert(g.fingerprint()) {
                Lookup::Miss
            } else {
                Lookup::Hit
            };
            prop_assert_eq!(lookup, expected_lookup);
            prop_assert_eq!(observe(&cached), observe(&fresh));
            prop_assert!(cached.symbolic_iterations_computed() <= 1);
        }
        let stats = registry.stats();
        let unique = seen.len() as u64;
        prop_assert_eq!(stats.misses, unique);
        prop_assert_eq!(stats.hits, picks.len() as u64 - unique);
        prop_assert_eq!(stats.entries, seen.len());
        prop_assert_eq!(stats.bypasses, 0);
        prop_assert_eq!(stats.collisions, 0);
        // K duplicates of one graph -> exactly one symbolic iteration per
        // distinct content (deadlocked graphs may have run none).
        prop_assert!(stats.symbolic_iterations <= unique);
    }

    /// The chunked parallel fan-outs — capacity minimization's probe ring
    /// and the Pareto sweep — are byte-identical to the serial oracle at
    /// every pool width 1..=8, on random graphs (deadlocking ones included:
    /// errors must match too). Chunking batches probes by the budget cost
    /// model, so this pins "coarser tasks" to "identical answers".
    #[test]
    fn chunked_sweeps_equal_serial_oracle_at_every_width(g in random_graph()) {
        let graph = g.build();
        let iterations = 3;
        let serial_curve = throughput_buffer_tradeoff_serial(&graph, iterations);
        let serial_caps = sdfr_pool::Pool::new(1)
            .install(|| minimize_capacities(&graph, iterations));
        for width in 1..=8usize {
            let pool = sdfr_pool::Pool::new(width);
            let curve = pool.install(|| throughput_buffer_tradeoff(&graph, iterations));
            prop_assert_eq!(
                &curve, &serial_curve,
                "Pareto sweep diverged from serial at width {}", width
            );
            let caps = pool.install(|| minimize_capacities(&graph, iterations));
            prop_assert_eq!(
                &caps, &serial_caps,
                "capacity minimization diverged from 1-thread at width {}", width
            );
        }
    }

    /// The same differential guarantee under a shared *tight* budget: the
    /// cached session and a fresh session given the same cap observe the
    /// same exhaustion or the same results.
    #[test]
    fn registry_results_equal_fresh_sessions_under_caps(
        g in random_graph(),
        cap in 1u64..=40,
    ) {
        let registry = SessionRegistry::new();
        let budget = Budget::unlimited().with_max_firings(cap);
        let g1 = Arc::new(g.build());
        let fresh = AnalysisSession::with_budget(SdfGraph::clone(&g1), budget.clone());
        let (first, l1) = registry.lookup(&g1, &budget);
        prop_assert_eq!(l1, Lookup::Miss);
        prop_assert_eq!(observe(&first), observe(&fresh));
        // A duplicate under the same cap shares the session — and therefore
        // trivially observes identical bytes.
        let g2 = Arc::new(g.build());
        let (second, l2) = registry.lookup(&g2, &budget);
        prop_assert_eq!(l2, Lookup::Hit);
        prop_assert!(Arc::ptr_eq(&first, &second));
        // A different cap is a different key: isolated session.
        let (third, l3) = registry.lookup(&g1, &Budget::unlimited().with_max_firings(cap + 1));
        prop_assert_eq!(l3, Lookup::Miss);
        prop_assert!(!Arc::ptr_eq(&first, &third));
    }
}

/// N threads hammer one registry with overlapping fingerprints under tight
/// budgets: no panics, no double-compute of the symbolic iteration, and
/// all workers observe identical results per key.
#[test]
fn concurrent_hammering_never_double_computes() {
    let mut graphs = Vec::new();
    for i in 0..3u64 {
        let mut b = SdfGraph::builder(format!("hammer{i}"));
        let x = b.actor("x", 1 + i as i64);
        let y = b.actor("y", 2);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1 + i).unwrap();
        graphs.push(Arc::new(b.build().unwrap()));
    }
    let registry = SessionRegistry::new();
    let budget = Budget::unlimited().with_max_firings(25);

    let outcomes: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let registry = &registry;
                let graphs = &graphs;
                let budget = &budget;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..40 {
                        let g = &graphs[(t + round) % graphs.len()];
                        let session = registry.session_with_budget(g, budget);
                        let period = format!("{:?}", session.throughput().map(|t| t.period()));
                        seen.push(format!("{}:{}", g.name(), period));
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .collect()
    });

    // Every observation of one graph agrees across all threads and rounds.
    let mut per_graph: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for worker in &outcomes {
        for obs in worker {
            let (name, result) = obs.split_once(':').unwrap();
            let prior = per_graph.entry(name).or_insert(result);
            assert_eq!(*prior, result, "threads disagree on {name}");
        }
    }

    let stats = registry.stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits, 8 * 40 - 3);
    assert_eq!(stats.evictions, 0);
    // The acceptance criterion: one symbolic iteration per distinct key,
    // no matter how many threads hammered it.
    assert!(stats.symbolic_iterations <= 3, "double-computed: {stats:?}");
    for g in &graphs {
        let session = registry.session_with_budget(g, &budget);
        assert!(session.symbolic_iterations_computed() <= 1);
    }
}

/// Eviction under concurrency: a deliberately tiny registry thrashes while
/// workers hold and keep using their `Arc`s — evicted sessions must remain
/// fully usable and agree with fresh sessions.
#[test]
fn eviction_never_corrupts_in_flight_sessions() {
    let mut graphs = Vec::new();
    for i in 0..4u64 {
        let mut b = SdfGraph::builder(format!("evict{i}"));
        let x = b.actor("x", 2 + i as i64);
        let y = b.actor("y", 3);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        graphs.push(Arc::new(b.build().unwrap()));
    }
    // Entry cap 1: almost every lookup evicts the previous entry.
    let registry = SessionRegistry::with_config(RegistryConfig {
        max_entries: 1,
        max_bytes: u64::MAX,
    });
    let expected: Vec<String> = graphs
        .iter()
        .map(|g| observe(&AnalysisSession::new(SdfGraph::clone(g))))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..6 {
            let registry = &registry;
            let graphs = &graphs;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..25 {
                    let i = (t + round) % graphs.len();
                    // Hold the Arc across subsequent lookups (which evict
                    // this very entry) and only then drive the analysis.
                    let held = registry.session(&graphs[i]);
                    let _ = registry.session(&graphs[(i + 1) % graphs.len()]);
                    assert_eq!(observe(&held), expected[i], "graph {i} corrupted");
                }
            });
        }
    });

    let stats = registry.stats();
    assert!(stats.evictions > 0, "the tiny cap must have evicted");
    assert_eq!(stats.entries, 1);
    // Thrashing recomputes (each re-insert is a fresh session), but never
    // breaks: every recompute is still one run per session, and totals are
    // consistent with the miss count.
    assert!(stats.symbolic_iterations <= stats.misses);
}

/// Exhausted results are cached and shared like successes: a too-tight cap
/// produces the *same* structured error through the registry as through a
/// fresh session, including after eviction and re-entry.
#[test]
fn exhaustion_is_shared_and_stable() {
    let mut b = SdfGraph::builder("tight");
    let x = b.actor("x", 1);
    let y = b.actor("y", 1);
    b.channel(x, y, 50, 1, 0).unwrap();
    b.channel(y, x, 1, 50, 50).unwrap();
    let g = Arc::new(b.build().unwrap());
    let budget = Budget::unlimited().with_max_firings(3);

    let fresh = AnalysisSession::with_budget(SdfGraph::clone(&g), budget.clone());
    let fresh_err = fresh.throughput().unwrap_err();
    assert!(matches!(fresh_err, SdfError::Exhausted { .. }));

    let registry = SessionRegistry::new();
    for _ in 0..5 {
        let s = registry.session_with_budget(&g, &budget);
        assert_eq!(s.throughput().unwrap_err(), fresh_err.clone());
    }
    let stats = registry.stats();
    assert_eq!((stats.misses, stats.hits), (1, 4));
    registry.clear();
    let s = registry.session_with_budget(&g, &budget);
    assert_eq!(s.throughput().unwrap_err(), fresh_err);
}

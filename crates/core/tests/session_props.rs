//! Property tests for [`AnalysisSession`]: the memoizing context must be
//! observationally identical to the free functions it wraps, and safe to
//! share across threads even when its budget is too tight to finish.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! - for random consistent graphs, every session-cached artifact (period,
//!   iteration matrix, repetition vector, bottleneck, conversions) equals
//!   the result of the corresponding free function computed from scratch;
//! - a session shared across `std::thread::scope` workers under a tight
//!   budget never panics: every worker sees either a result or a structured
//!   error, all workers agree, and at most one symbolic iteration ran.

use proptest::prelude::*;

use sdfr_analysis::bottleneck::bottleneck;
use sdfr_analysis::symbolic::symbolic_iteration;
use sdfr_analysis::throughput::throughput;
use sdfr_analysis::AnalysisSession;
use sdfr_core::{novel, traditional};
use sdfr_graph::budget::Budget;
use sdfr_graph::repetition::repetition_vector;
use sdfr_graph::{SdfError, SdfGraph};

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A randomly shaped but always-consistent graph: a ring of `n` actors
/// whose channel rates are derived from a per-actor firing count `q`, so
/// every balance equation holds by construction (deadlock remains
/// possible; inconsistency is not).
#[derive(Debug, Clone)]
struct RandomGraph {
    exec: Vec<i64>,
    q: Vec<u64>,
    tokens: Vec<u64>,
}

impl RandomGraph {
    fn build(&self) -> SdfGraph {
        let n = self.q.len();
        let mut b = SdfGraph::builder("random");
        let ids: Vec<_> = (0..n)
            .map(|i| b.actor(format!("a{i}"), self.exec[i]))
            .collect();
        for i in 0..n {
            let j = (i + 1) % n;
            let g = gcd(self.q[i], self.q[j]);
            b.channel(ids[i], ids[j], self.q[j] / g, self.q[i] / g, self.tokens[i])
                .expect("rates derived from q are nonzero");
        }
        b.build().expect("ring graphs are well-formed")
    }
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..=5).prop_flat_map(|n| {
        (
            proptest::collection::vec(0i64..=10, n),
            proptest::collection::vec(1u64..=4, n),
            proptest::collection::vec(0u64..=6, n),
        )
            .prop_map(|(exec, q, tokens)| RandomGraph { exec, q, tokens })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every artifact served from the session cache is identical to the
    /// free-function result computed from scratch on the same graph.
    #[test]
    fn session_results_equal_free_functions(g in random_graph()) {
        let g = g.build();
        let s = AnalysisSession::new(g.clone());

        match (s.throughput(), throughput(&g)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.period(), b.period());
                // γ agrees too (free function recomputes it).
                prop_assert_eq!(
                    s.repetition_vector().unwrap(),
                    &repetition_vector(&g).unwrap()
                );
                // The cached matrix is the matrix of a fresh iteration.
                let sym = symbolic_iteration(&g).unwrap();
                prop_assert_eq!(&s.symbolic().unwrap().matrix, &sym.matrix);
                prop_assert_eq!(s.bottleneck().unwrap(), bottleneck(&g).unwrap());
                // Conversions through the session match the free path.
                let nv_free = novel::convert(&g).unwrap();
                let nv_sess = novel::convert_with_session(&s).unwrap();
                prop_assert_eq!(nv_free.stats(), nv_sess.stats());
                let tr_free = traditional::convert(&g).unwrap();
                let tr_sess = traditional::convert_with_session(&s).unwrap();
                prop_assert_eq!(
                    tr_free.graph.num_actors(),
                    tr_sess.graph.num_actors()
                );
                // Everything above came out of one symbolic iteration.
                prop_assert_eq!(s.symbolic_iterations_computed(), 1);
            }
            (Err(SdfError::Deadlock { .. }), Err(SdfError::Deadlock { .. })) => {}
            (a, b) => prop_assert!(false, "session {a:?} vs free {b:?}"),
        }
    }

    /// A session shared across scoped threads under a tight budget never
    /// panics; all workers observe the same outcome, and at most one
    /// symbolic iteration was ever executed.
    #[test]
    fn shared_session_survives_tight_budgets(g in random_graph(), cap in 1u64..=30) {
        let g = g.build();
        let budget = Budget::unlimited().with_max_firings(cap);
        let s = AnalysisSession::with_budget(g, budget);
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let s = &s;
                    scope.spawn(move || match i % 2 {
                        0 => s.throughput().map(|t| t.period()),
                        _ => s.eigenvalue(),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker must not panic"))
                .collect::<Vec<_>>()
        });
        // Both query styles resolve through the same cached slot, so all
        // four outcomes are identical.
        for pair in outcomes.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
        match &outcomes[0] {
            Ok(_) | Err(SdfError::Exhausted { .. }) | Err(SdfError::Deadlock { .. }) => {}
            other => prop_assert!(false, "unexpected outcome: {other:?}"),
        }
        prop_assert!(s.symbolic_iterations_computed() <= 1);
        // The cumulative charge never exceeds ~2× the cap (schedule +
        // symbolic phases each charge at most cap before tripping).
        prop_assert!(s.spent() <= 2 * cap + 2);
    }
}

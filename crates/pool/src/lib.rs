//! A dependency-free work-stealing thread pool for the workspace's parallel
//! fan-outs (capacity probing, the Pareto sweep, `sdfr batch` units,
//! registry prefetching).
//!
//! # Why not `std::thread::scope` per call?
//!
//! The design-space searches fan out *nested*: a batch unit runs a Pareto
//! sweep whose every step probes capacities in parallel. Spawning fresh OS
//! threads at each level oversubscribes the machine (threads multiply
//! across levels) or serializes (when an inner fan-out decides one worker
//! is warranted because the outer level already owns the cores). A shared
//! pool makes the levels *cooperate*: inner fan-outs schedule tasks onto
//! the same workers, and a thread waiting for a scope to finish executes
//! queued tasks instead of blocking.
//!
//! # Executor model
//!
//! [`Pool::new(n)`](Pool::new) spawns `n − 1` background workers; the
//! thread driving a [`Pool::scope`] participates as the n-th executor while
//! it waits. Each worker owns a deque used LIFO from its own end (good
//! locality for nested spawns) and FIFO from thieves' end (oldest —
//! biggest — tasks migrate first); tasks submitted from outside the pool
//! land in a shared FIFO injector. A **1-thread pool runs every task on the
//! scope-driving thread in submission order** — the deterministic serial
//! reference the differential tests compare against.
//!
//! # Determinism
//!
//! Work stealing randomizes *completion* order, never results: every
//! fan-out in this workspace writes results into index-addressed slots and
//! folds them in ascending index order, so pooled results are byte-identical
//! to the serial reference paths regardless of thread count or steal
//! schedule.
//!
//! # Sizing
//!
//! The lazily-created [`global`] pool sizes itself from
//! [`std::thread::available_parallelism`], overridable with the
//! `SDFR_THREADS` environment variable (a positive integer; see
//! [`env_threads`] for the validation front-ends use to reject bad values
//! up front — the lazy global itself ignores an invalid override rather
//! than panicking from library code).
//!
//! # Example
//!
//! ```
//! let pool = sdfr_pool::Pool::new(4);
//! // Index-ordered parallel map: results never depend on scheduling.
//! let squares = pool.map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Scoped spawns may borrow from the enclosing frame.
//! let data = vec![1u64, 2, 3];
//! let sum = std::sync::atomic::AtomicU64::new(0);
//! pool.scope(|s| {
//!     for &x in &data {
//!         let sum = &sum;
//!         s.spawn(move |_| {
//!             sum.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(sum.into_inner(), 6);
//! assert!(pool.stats().executed >= 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Duration;

/// A queued unit of work. All jobs are created by [`Scope::spawn`], which
/// wraps the user closure in panic capture and completion bookkeeping, so
/// executing a job never unwinds.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker sleeps before re-polling the queues (a safety
/// net; pushes notify the condvar under the idle lock, so wakeups are not
/// normally missed).
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How long a scope-waiting thread sleeps between help attempts when no
/// task is currently stealable.
const WAIT_POLL: Duration = Duration::from_millis(1);

/// The shared state of one pool: queues, sleep coordination, counters.
struct Inner {
    /// Total executor count (background workers + the scope-driving
    /// thread); `queues.len() == threads - 1`.
    threads: usize,
    /// FIFO queue for tasks submitted from threads outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: owner pushes/pops at the back (LIFO), thieves
    /// and the injector-drain path pop at the front (FIFO).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep coordination: pushes notify under this lock, idle workers
    /// re-check the queues under it before sleeping.
    idle: Mutex<()>,
    work: Condvar,
    shutdown: AtomicBool,
    spawned: AtomicU64,
    stolen: AtomicU64,
    executed: AtomicU64,
}

impl Inner {
    /// Takes one job: own deque back (LIFO) when called by worker `local`,
    /// then the shared injector front, then other workers' fronts (a
    /// steal). Returns `None` when every queue is momentarily empty.
    fn find_job(&self, local: Option<usize>) -> Option<Job> {
        if let Some(i) = local {
            if let Some(job) = self.queues[i].lock().expect("pool queue").pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("pool injector").pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        let start = local.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == local {
                continue;
            }
            if let Some(job) = self.queues[victim].lock().expect("pool queue").pop_front() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Whether any queue currently holds a task (checked under the idle
    /// lock before a worker goes to sleep).
    fn has_work(&self) -> bool {
        if !self.injector.lock().expect("pool injector").is_empty() {
            return true;
        }
        self.queues
            .iter()
            .any(|q| !q.lock().expect("pool queue").is_empty())
    }

    /// Enqueues a job: onto the calling worker's own deque when the caller
    /// belongs to this pool (LIFO locality), onto the injector otherwise.
    fn push(self: &Arc<Self>, job: Job) {
        let local = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .filter(|ctx| Arc::ptr_eq(&ctx.inner, self))
                .map(|ctx| ctx.index)
        });
        match local {
            Some(i) => self.queues[i].lock().expect("pool queue").push_back(job),
            None => self.injector.lock().expect("pool injector").push_back(job),
        }
        self.spawned.fetch_add(1, Ordering::Relaxed);
        // Lock-then-notify pairs with the sleep path's re-check under the
        // same lock: a job is either visible to that re-check or its
        // notification arrives after the sleeper released the lock.
        let _guard = self.idle.lock().expect("pool idle lock");
        self.work.notify_all();
    }

    fn execute(&self, job: Job) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        job();
    }
}

/// Per-thread identity of pool workers, used to route [`Scope::spawn`] to
/// the local deque and to resolve [`current`] on worker threads.
struct WorkerCtx {
    inner: Arc<Inner>,
    joiner: Weak<Joiner>,
    index: usize,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
    static CURRENT: RefCell<Option<Pool>> = const { RefCell::new(None) };
}

fn worker_loop(inner: Arc<Inner>, joiner: Weak<Joiner>, index: usize) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx {
            inner: Arc::clone(&inner),
            joiner,
            index,
        });
    });
    loop {
        if let Some(job) = inner.find_job(Some(index)) {
            inner.execute(job);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = inner.idle.lock().expect("pool idle lock");
        if inner.shutdown.load(Ordering::Acquire) || inner.has_work() {
            continue;
        }
        let _ = inner.work.wait_timeout(guard, IDLE_POLL);
    }
}

/// Owns the worker threads: dropping the last [`Pool`] handle signals
/// shutdown and joins them. Workers themselves hold only a [`Weak`]
/// reference, so the cycle pool → joiner → worker → pool never forms.
struct Joiner {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for Joiner {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.idle.lock().expect("pool idle lock");
            self.inner.work.notify_all();
        }
        // The last handle can die on one of this pool's own workers — e.g.
        // a queued job's environment held the final `Pool` clone and the
        // worker drops it after running the job. Joining from there would
        // self-join (a panic) or block a worker on its peers; detach
        // instead — every worker exits by itself within one idle poll of
        // the shutdown flag. `try_with` also covers drops during thread
        // teardown, after the identity TLS is gone.
        let on_own_worker = WORKER
            .try_with(|w| {
                w.borrow()
                    .as_ref()
                    .is_some_and(|ctx| Arc::ptr_eq(&ctx.inner, &self.inner))
            })
            .unwrap_or(true);
        if on_own_worker {
            return;
        }
        for handle in self.handles.lock().expect("pool joiner").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A work-stealing thread pool. Cheap to clone (a pair of [`Arc`]s); the
/// worker threads shut down when the last handle is dropped.
///
/// See the [module documentation](self) for the executor model.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
    /// Keep-alive: dropping the last handle joins the workers.
    _joiner: Arc<Joiner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A snapshot of a pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Executor count (background workers + one scope-driving thread).
    pub threads: usize,
    /// Tasks submitted via [`Scope::spawn`].
    pub spawned: u64,
    /// Tasks taken from another worker's deque (or from a worker's deque
    /// by a helping non-worker thread).
    pub stolen: u64,
    /// Tasks executed to completion (including panicked ones — the panic
    /// is captured and re-thrown from the owning scope).
    pub executed: u64,
}

impl Pool {
    /// Creates a pool with `threads` executors: `threads - 1` background
    /// workers plus the thread that drives each [`Pool::scope`]. A
    /// 1-thread pool spawns no workers and runs every task on the
    /// scope-driving thread in submission order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` — front-ends validate user-supplied counts
    /// first (see [`env_threads`]) and report a usage error instead.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool requires at least one thread");
        let workers = threads - 1;
        let inner = Arc::new(Inner {
            threads,
            injector: Mutex::new(VecDeque::new()),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            spawned: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let joiner = Arc::new(Joiner {
            inner: Arc::clone(&inner),
            handles: Mutex::new(Vec::with_capacity(workers)),
        });
        for index in 0..workers {
            let inner = Arc::clone(&inner);
            let weak = Arc::downgrade(&joiner);
            let handle = std::thread::Builder::new()
                .name(format!("sdfr-pool-{index}"))
                .spawn(move || worker_loop(inner, weak, index))
                .expect("spawn pool worker thread");
            joiner.handles.lock().expect("pool joiner").push(handle);
        }
        Pool {
            inner,
            _joiner: joiner,
        }
    }

    /// The executor count this pool was created with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// A snapshot of the lifetime spawn/steal/execute counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.inner.threads,
            spawned: self.inner.spawned.load(Ordering::Relaxed),
            stolen: self.inner.stolen.load(Ordering::Relaxed),
            executed: self.inner.executed.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`Scope`] onto which tasks borrowing from the
    /// enclosing frame may be spawned, and returns only after every
    /// spawned task (including transitively spawned ones) has completed.
    ///
    /// While waiting, the calling thread executes queued tasks — its own
    /// scope's or any other's — so nested scopes cannot deadlock: a worker
    /// blocked on an inner scope keeps draining the very queue its tasks
    /// are waiting in.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned task panics, the panic is re-thrown here
    /// after all tasks of the scope have completed (the first captured
    /// payload wins; every task still runs to its own completion or
    /// panic).
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R + 'scope) -> R {
        let scope = Scope {
            pool: self.clone(),
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
                lock: Mutex::new(()),
                cvar: Condvar::new(),
            }),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&scope.state);
        // The driver's own panic takes precedence; a task panic is only
        // surfaced when the driver completed normally.
        match result {
            Ok(r) => {
                if let Some(payload) = scope.state.panic.lock().expect("scope panic slot").take() {
                    resume_unwind(payload);
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Evaluates `f(0..n)` on the pool and returns the results in index
    /// order — scheduling affects wall-clock time, never the result. With
    /// one thread (or `n <= 1`) this is a plain sequential map on the
    /// calling thread.
    pub fn map_indexed<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if n <= 1 || self.threads() == 1 {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let slots = &slots;
        let f = &f;
        self.scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                s.spawn(move |_| {
                    let r = f(i);
                    *slot.lock().expect("result slot") = Some(r);
                });
            }
        });
        slots
            .iter()
            .map(|m| {
                m.lock()
                    .expect("result slot")
                    .take()
                    .expect("scope waits for every task")
            })
            .collect()
    }

    /// A coarse chunk size for fanning `n` items out on this pool: a few
    /// chunks per executor balances load under work stealing without
    /// paying per-item task overhead (boxing, queue locking, slot
    /// round-trips). Callers with a per-item cost model (e.g. the buffer
    /// sweep's `Budget` estimates) may pass their own size to
    /// [`map_indexed_chunked`](Pool::map_indexed_chunked) instead.
    #[must_use]
    pub fn chunk_size(&self, n: usize) -> usize {
        const CHUNKS_PER_THREAD: usize = 4;
        n.div_ceil((self.threads() * CHUNKS_PER_THREAD).max(1))
            .max(1)
    }

    /// Like [`map_indexed`](Pool::map_indexed), but spawns **one task per
    /// contiguous chunk of `chunk` indices** instead of one per index, and
    /// flattens the per-chunk results in ascending chunk (hence index)
    /// order. Each index still evaluates the same pure `f(i)`, so the
    /// output is element-for-element identical to the serial
    /// `(0..n).map(f)` regardless of chunk size, thread count, or steal
    /// schedule — only task-dispatch overhead changes.
    ///
    /// `chunk == 0` is treated as 1. With one thread, or when a single
    /// chunk covers all of `n`, this is a plain sequential map on the
    /// calling thread.
    pub fn map_indexed_chunked<R: Send>(
        &self,
        n: usize,
        chunk: usize,
        f: impl Fn(usize) -> R + Sync,
    ) -> Vec<R> {
        let chunk = chunk.max(1);
        if n <= chunk || self.threads() == 1 {
            return (0..n).map(f).collect();
        }
        let chunks = n.div_ceil(chunk);
        let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let slots = &slots;
        let f = &f;
        self.scope(|s| {
            for (c, slot) in slots.iter().enumerate() {
                let start = c * chunk;
                let end = ((c + 1) * chunk).min(n);
                s.spawn(move |_| {
                    let r: Vec<R> = (start..end).map(f).collect();
                    *slot.lock().expect("chunk slot") = Some(r);
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for m in slots {
            out.append(
                m.lock()
                    .expect("chunk slot")
                    .take()
                    .expect("scope waits for every task")
                    .as_mut(),
            );
        }
        out
    }

    /// Runs `f` with this pool installed as the calling thread's
    /// [`current`] pool, so library fan-outs inside `f` route here instead
    /// of the global pool. The previous installation is restored on exit,
    /// panic included. (Worker threads are bound to their own pool and
    /// ignore installations.)
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Pool>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(self.clone())));
        f()
    }

    /// Help-while-waiting: executes queued tasks until `state.pending`
    /// drops to zero.
    fn wait_scope(&self, state: &ScopeState) {
        let local = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .filter(|ctx| Arc::ptr_eq(&ctx.inner, &self.inner))
                .map(|ctx| ctx.index)
        });
        while state.pending.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.inner.find_job(local) {
                self.inner.execute(job);
            } else {
                let guard = state.lock.lock().expect("scope lock");
                if state.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Timed: new stealable work elsewhere in the pool does not
                // signal this condvar, only this scope's completions do.
                let _ = state.cvar.wait_timeout(guard, WAIT_POLL);
            }
        }
    }
}

/// Completion tracking for one [`Pool::scope`] invocation.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl ScopeState {
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().expect("scope lock");
            self.cvar.notify_all();
        }
    }
}

/// A spawn handle tied to one [`Pool::scope`] invocation. Tasks receive a
/// `&Scope` themselves, so they can spawn further tasks into the same
/// scope.
pub struct Scope<'scope> {
    pool: Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, like [`std::thread::Scope`]: the scope
    /// must not be coerced to a longer or shorter task lifetime.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.state.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `task` onto the pool. The closure may borrow anything that
    /// outlives the `scope` call (`'scope`) and receives a `&Scope` for
    /// nested spawns. Panics inside `task` are captured and re-thrown by
    /// the owning [`Pool::scope`] after all tasks finish.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let pool = self.pool.clone();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                pool: pool.clone(),
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            // Install the scope's pool as `current()` for the task body:
            // nested fan-outs inside the task cooperate with this pool even
            // when the task is executed by a helping non-worker thread.
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| scope.pool.install(|| task(&scope))))
            {
                let mut slot = state.panic.lock().expect("scope panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.complete_one();
        });
        // SAFETY: `Pool::scope` does not return before `pending` reaches
        // zero, i.e. before this job has run and dropped its closure; the
        // `'scope` borrows it captures therefore strictly outlive every
        // use. Only the lifetime is transmuted, the vtable is unchanged.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.inner.push(job);
    }
}

/// The process-wide shared pool, created on first use. Sized by
/// `SDFR_THREADS` when that is set to a valid positive integer, by
/// [`std::thread::available_parallelism`] otherwise (an *invalid*
/// `SDFR_THREADS` is ignored here — front-ends reject it with
/// [`env_threads`] before ever reaching the pool).
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// The pool the calling thread's fan-outs should use: the worker's own
/// pool on pool worker threads (so nested fan-outs cooperate instead of
/// oversubscribing), an [`Pool::install`]ed pool when one is active on
/// this thread, the [`global`] pool otherwise.
#[must_use]
pub fn current() -> Pool {
    let worker = WORKER.with(|w| {
        w.borrow().as_ref().and_then(|ctx| {
            ctx.joiner.upgrade().map(|joiner| Pool {
                inner: Arc::clone(&ctx.inner),
                _joiner: joiner,
            })
        })
    });
    if let Some(pool) = worker {
        return pool;
    }
    if let Some(pool) = CURRENT.with(|c| c.borrow().clone()) {
        return pool;
    }
    global().clone()
}

/// The calling thread's background-worker index within its pool:
/// `Some(0..threads-1)` on a pool worker thread, `None` on scope-driving
/// and outside threads. Per-worker scratch shards (e.g. the buffer
/// searcher's session seeders) use this to claim a contention-free slot;
/// `None` callers share a fallback slot, which in practice is only the
/// single scope-driving thread.
#[must_use]
pub fn worker_index() -> Option<usize> {
    WORKER.with(|w| w.borrow().as_ref().map(|ctx| ctx.index))
}

/// The error returned by [`env_threads`] for a malformed `SDFR_THREADS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsError {
    raw: String,
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SDFR_THREADS must be a positive integer, got '{}'",
            self.raw
        )
    }
}

impl std::error::Error for ThreadsError {}

/// Reads the `SDFR_THREADS` override: `Ok(None)` when unset, the validated
/// count when set to a positive integer, and an error (for front-ends to
/// surface as a usage error) when set to anything else — including `0`.
pub fn env_threads() -> Result<Option<NonZeroUsize>, ThreadsError> {
    match std::env::var("SDFR_THREADS") {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<NonZeroUsize>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ThreadsError { raw }),
        },
    }
}

/// The executor count the [`global`] pool uses: a valid `SDFR_THREADS`, or
/// the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(Some(n)) = env_threads() {
        return n.get();
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn one_thread_pool_runs_tasks_in_submission_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..16 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!((stats.spawned, stats.executed, stats.stolen), (16, 16, 0));
    }

    #[test]
    fn map_indexed_matches_serial_on_any_width() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let got = pool.map_indexed(37, |i| i * 3 + 1);
            assert_eq!(got, (0..37).map(|i| i * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_map_matches_serial_for_any_chunk_size() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            for chunk in [0, 1, 2, 3, 7, 37, 100] {
                let got = pool.map_indexed_chunked(37, chunk, |i| i * 3 + 1);
                assert_eq!(
                    got,
                    (0..37).map(|i| i * 3 + 1).collect::<Vec<_>>(),
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn chunk_size_is_positive_and_covers_n() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            for n in [0, 1, 5, 100, 10_000] {
                let c = pool.chunk_size(n);
                assert!(c >= 1);
                assert!(c * threads * 4 >= n, "threads={threads} n={n} chunk={c}");
            }
        }
    }

    #[test]
    fn worker_index_is_none_off_pool_and_some_on_workers() {
        assert_eq!(worker_index(), None);
        let pool = Pool::new(3);
        let seen = Mutex::new(std::collections::BTreeSet::new());
        pool.scope(|s| {
            for _ in 0..64 {
                let seen = &seen;
                s.spawn(move |_| {
                    seen.lock().unwrap().insert(worker_index());
                    // Give the other workers a chance to claim a task.
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        // Every observed index fits the worker range (the driver shows
        // up as None when it helps).
        for idx in seen.lock().unwrap().iter().flatten() {
            assert!(*idx < 2);
        }
    }

    #[test]
    fn nested_scopes_make_progress() {
        // More blocked outer scopes than workers: only help-while-wait
        // lets the inner tasks run.
        let pool = Pool::new(2);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let hits = &hits;
                s.spawn(move |_| {
                    current().scope(|s2| {
                        for _ in 0..4 {
                            s2.spawn(move |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.into_inner(), 32);
    }

    #[test]
    fn install_routes_current_and_restores() {
        let pool = Pool::new(2);
        let outside = current();
        let inside = pool.install(current);
        assert!(Arc::ptr_eq(&inside.inner, &pool.inner));
        let after = current();
        assert!(Arc::ptr_eq(&after.inner, &outside.inner));
    }

    #[test]
    fn env_threads_validation() {
        // Run single-threaded over the env var to avoid cross-test races:
        // this test is the only one touching SDFR_THREADS in this crate.
        std::env::remove_var("SDFR_THREADS");
        assert_eq!(env_threads(), Ok(None));
        std::env::set_var("SDFR_THREADS", "3");
        assert_eq!(env_threads(), Ok(Some(NonZeroUsize::new(3).unwrap())));
        for bad in ["0", "-1", "many", ""] {
            std::env::set_var("SDFR_THREADS", bad);
            let err = env_threads().unwrap_err();
            assert!(err.to_string().contains("positive integer"), "{err}");
        }
        std::env::remove_var("SDFR_THREADS");
    }
}

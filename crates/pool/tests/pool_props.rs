//! Differential and stress tests for the work-stealing pool: random spawn
//! DAGs execute exactly like serial evaluation on any pool width, task
//! panics propagate to the scope caller, and the stats counters account
//! for every submitted task under an 8-worker stress load.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection;
use proptest::prelude::*;
use sdfr_pool::{Pool, Scope};

/// A cheap but order-sensitive mixing function standing in for "work".
fn chaos(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h.wrapping_mul(31).rotate_left(7)
}

/// Spawns `node` as a task that records its result and recursively spawns
/// its children — a random-shaped spawn DAG driven entirely through the
/// scoped API (children spawn from inside their parent's task body).
fn spawn_node<'scope>(
    s: &Scope<'scope>,
    node: usize,
    children: &'scope [Vec<usize>],
    values: &'scope [u64],
    slots: &'scope [AtomicU64],
) {
    s.spawn(move |s| {
        slots[node].store(chaos(values[node]), Ordering::Relaxed);
        for &c in &children[node] {
            spawn_node(s, c, children, values, slots);
        }
    });
}

proptest! {
    /// Random task trees (parent of node i drawn from 0..i, so every shape
    /// from a chain to a star occurs) produce the same per-node results as
    /// serial evaluation on pools of width 1..=8, and the pool's counters
    /// account for exactly one execution per node.
    #[test]
    fn random_spawn_trees_match_serial_execution(
        values in collection::vec(any::<u64>(), 1..48usize),
        width in 1usize..9,
    ) {
        let n = values.len();
        let mut children = vec![Vec::new(); n];
        for i in 1..n {
            children[(values[i] as usize) % i].push(i);
        }
        let expected: Vec<u64> = values.iter().map(|&v| chaos(v)).collect();

        let pool = Pool::new(width);
        let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.scope(|s| spawn_node(s, 0, &children, &values, &slots));
        let got: Vec<u64> = slots.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        prop_assert_eq!(got, expected);

        let stats = pool.stats();
        prop_assert_eq!(stats.spawned, n as u64);
        prop_assert_eq!(stats.executed, n as u64);
    }

    /// `map_indexed` is a drop-in for serial iteration: same values, same
    /// order, at every width.
    #[test]
    fn map_indexed_matches_serial_at_any_width(
        values in collection::vec(any::<u64>(), 0..64usize),
        width in 1usize..9,
    ) {
        let pool = Pool::new(width);
        let got = pool.map_indexed(values.len(), |i| chaos(values[i]));
        let expected: Vec<u64> = values.iter().map(|&v| chaos(v)).collect();
        prop_assert_eq!(got, expected);
    }

    /// `map_indexed_chunked` is byte-identical to serial iteration for
    /// *every* (width, chunk) combination — chunk 0, chunk 1, chunks that
    /// divide `n`, chunks that don't, and chunks larger than `n`. This is
    /// the determinism contract the coarse-grained capacity-probe and
    /// Pareto fan-outs rely on: chunking may only change wall-clock, never
    /// values or order.
    #[test]
    fn chunked_map_matches_serial_at_any_width_and_chunk(
        values in collection::vec(any::<u64>(), 0..96usize),
        width in 1usize..9,
        chunk in 0usize..128,
    ) {
        let pool = Pool::new(width);
        let got = pool.map_indexed_chunked(values.len(), chunk, |i| chaos(values[i]));
        let expected: Vec<u64> = values.iter().map(|&v| chaos(v)).collect();
        prop_assert_eq!(got, expected);
    }

    /// The cost-model chunk size is always usable: positive, and never so
    /// large that a single chunk hides all parallelism when there is more
    /// than one worker and enough items to split.
    #[test]
    fn chunk_size_is_sound(n in 0usize..10_000, width in 1usize..9) {
        let pool = Pool::new(width);
        let chunk = pool.chunk_size(n);
        prop_assert!(chunk >= 1);
        // Ceil division: the chunks cover n with no more than
        // width * CHUNKS_PER_THREAD pieces.
        prop_assert!(chunk.saturating_mul(width * 4) >= n);
    }
}

#[test]
fn panic_in_task_propagates_with_its_payload() {
    let pool = Pool::new(4);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..16 {
                s.spawn(move |_| {
                    if i == 7 {
                        panic!("task 7 exploded");
                    }
                });
            }
        });
    }))
    .expect_err("the scope must re-raise the task panic");
    let msg = caught
        .downcast_ref::<&str>()
        .copied()
        .expect("payload is the original &str");
    assert_eq!(msg, "task 7 exploded");
    // The pool survives a panicked scope: workers are still alive and
    // subsequent scopes run normally.
    assert_eq!(pool.map_indexed(4, |i| i * 2), vec![0, 2, 4, 6]);
}

#[test]
fn panic_in_nested_scope_unwinds_through_the_outer_scope() {
    let pool = Pool::new(2);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|_| {
                // The inner scope re-raises on this worker; the outer scope
                // then re-raises the resulting task panic at the caller.
                sdfr_pool::current().scope(|inner| {
                    inner.spawn(|_| panic!("inner task"));
                });
            });
        });
    }))
    .expect_err("nested panic must reach the outermost caller");
    assert_eq!(
        caught.downcast_ref::<&str>().copied(),
        Some("inner task"),
        "original payload survives both scopes"
    );
}

#[test]
fn stress_8_workers_account_for_every_task() {
    const TASKS: u64 = 10_000;
    let pool = Pool::new(8);
    assert_eq!(pool.threads(), 8);
    let sum = AtomicU64::new(0);
    pool.scope(|s| {
        for i in 0..TASKS {
            let sum = &sum;
            s.spawn(move |_| {
                sum.fetch_add(chaos(i) % 1000, Ordering::Relaxed);
            });
        }
    });
    let expected: u64 = (0..TASKS).map(|i| chaos(i) % 1000).sum();
    assert_eq!(sum.load(Ordering::Relaxed), expected);
    let stats = pool.stats();
    assert_eq!(stats.threads, 8);
    assert_eq!(
        (stats.spawned, stats.executed),
        (TASKS, TASKS),
        "every submitted task executed exactly once: {stats:?}"
    );
}

#[test]
fn dropping_the_last_handle_on_a_worker_is_safe() {
    // Regression: a queued job's wrapper environment holds a Pool clone and
    // is dropped on the worker *after* the scope unblocks its caller. If
    // the caller drops its handle in that window, the worker drops the last
    // one — Joiner::drop must detach rather than self-join. Many quick
    // iterations make the window easy to hit.
    for _ in 0..200 {
        let pool = Pool::new(2);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {});
            }
        });
        drop(pool);
    }
}

#[test]
fn stress_nested_scopes_under_contention() {
    // 64 outer tasks each opening an inner scope of 16 on the same
    // 8-worker pool: 64 * 16 inner + 64 outer tasks, all accounted for,
    // no deadlock (waiting threads execute queued work).
    let pool = Pool::new(8);
    let count = AtomicU64::new(0);
    pool.scope(|s| {
        for _ in 0..64 {
            let count = &count;
            s.spawn(move |_| {
                let inner_pool = sdfr_pool::current();
                inner_pool.scope(|inner| {
                    for _ in 0..16 {
                        inner.spawn(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 64 * 16);
    let stats = pool.stats();
    assert_eq!(stats.spawned, 64 + 64 * 16);
    assert_eq!(stats.executed, 64 + 64 * 16);
}

//! Fuzz harness for the hand-rolled JSON parser.
//!
//! `json::parse` fronts every byte that reaches the server and the batch
//! front-end, so it must reject garbage with a positioned `ParseError` and
//! never panic or recurse without bound. Driven by a seeded xorshift PRNG
//! (no external dependencies, reproducible runs); `SDFR_FUZZ_ITERS` scales
//! the iteration count for CI smoke runs.

use sdfr_api::json::{self, Value};

/// Deterministic xorshift64* PRNG; seeds are fixed per test so a failure
/// reproduces byte-for-byte.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next() & 0xff) as u8
    }
}

fn iterations() -> usize {
    std::env::var("SDFR_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = Rng::new(0xa91_0001);
    for _ in 0..iterations() {
        let len = rng.below(300);
        let bytes: Vec<u8> = (0..len).map(|_| rng.byte()).collect();
        let input = String::from_utf8_lossy(&bytes);
        if let Err(e) = json::parse(&input) {
            assert!(e.offset <= input.len(), "error offset past end of input");
            assert!(!e.message.is_empty(), "empty error message");
        }
    }
}

#[test]
fn random_json_ish_token_streams_never_panic() {
    // Structurally plausible streams stress deeper code paths than raw
    // bytes: brackets, quotes, escapes, and digits in random orders.
    const TOKENS: &[&str] = &[
        "{",
        "}",
        "[",
        "]",
        ",",
        ":",
        "\"",
        "\\",
        "null",
        "true",
        "false",
        "0",
        "-",
        "9999999999999999999999",
        "\"k\"",
        " ",
        "\\u00",
        "\\uD800",
        "{\"a\":",
        "1e9",
        "0.5",
    ];
    let mut rng = Rng::new(0xa91_0002);
    for _ in 0..iterations() {
        let count = rng.below(40);
        let input: String = (0..count)
            .map(|_| TOKENS[rng.below(TOKENS.len())])
            .collect();
        let _ = json::parse(&input);
    }
}

#[test]
fn mutated_valid_documents_never_panic() {
    let base = r#"{"schema":"sdfr-api/1","graphs":[{"name":"g","content":"graph g\nactor a 2\n"}],"max_firings":100,"stable":true,"note":null}"#;
    let mut rng = Rng::new(0xa91_0003);
    for _ in 0..iterations() {
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..1 + rng.below(4) {
            match rng.below(3) {
                0 if !bytes.is_empty() => {
                    let pos = rng.below(bytes.len());
                    bytes[pos] = rng.byte();
                }
                0 => {}
                1 => {
                    let pos = rng.below(bytes.len() + 1);
                    bytes.insert(pos.min(bytes.len()), rng.byte());
                }
                _ => {
                    bytes.truncate(rng.below(bytes.len() + 1));
                }
            }
        }
        let input = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&input);
    }
}

/// Serializes a [`Value`] the same way the production emitters do, so
/// generated documents can be round-tripped through the parser.
fn emit(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        // `escape_str` renders the full literal, surrounding quotes
        // included.
        Value::Str(s) => out.push_str(&json::escape_str(s)),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::escape_str(k));
                out.push(':');
                emit(v, out);
            }
            out.push('}');
        }
    }
}

/// Builds a random value within the parser's depth cap, with strings that
/// exercise escaping (quotes, backslashes, control bytes, non-ASCII).
fn generate(rng: &mut Rng, depth: usize) -> Value {
    let leaf_only = depth >= 4;
    match rng.below(if leaf_only { 4 } else { 6 }) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::Int(rng.next() as i64 as i128),
        3 => {
            let len = rng.below(12);
            let s: String = (0..len)
                .map(|_| match rng.below(6) {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\u{1}',
                    4 => 'é',
                    _ => (b'a' + (rng.byte() % 26)) as char,
                })
                .collect();
            Value::Str(s)
        }
        4 => {
            let len = rng.below(4);
            Value::Arr((0..len).map(|_| generate(rng, depth + 1)).collect())
        }
        _ => {
            let len = rng.below(4);
            Value::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), generate(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn generated_documents_round_trip_exactly() {
    let mut rng = Rng::new(0xa91_0004);
    for _ in 0..iterations() {
        let value = generate(&mut rng, 0);
        let mut text = String::new();
        emit(&value, &mut text);
        match json::parse(&text) {
            Ok(parsed) => assert_eq!(parsed, value, "round trip changed the document: {text}"),
            Err(e) => panic!("generated document rejected ({e}): {text}"),
        }
    }
}

#[test]
fn deep_nesting_is_cut_off_with_an_error_not_a_stack_overflow() {
    for depth in [17usize, 64, 4096] {
        let mut doc = "[".repeat(depth);
        doc.push('1');
        doc.push_str(&"]".repeat(depth));
        assert!(
            json::parse(&doc).is_err(),
            "depth {depth} should exceed the nesting cap"
        );
    }
}

//! Property tests pinning the `sdfr-shards/1` consistent-hash ring.
//!
//! The ring is the one piece of fleet state every process derives
//! independently — a client and N servers must agree on every placement
//! without talking to each other. Three families of properties protect
//! that contract:
//!
//! - **Total, deterministic coverage**: every fingerprint maps to exactly
//!   one live shard; rebuilding the map from the same peer list (directly
//!   or through the `sdfr-shards/1` wire round trip) reproduces every
//!   placement; the failover route visits every live shard exactly once,
//!   starting at the owner.
//! - **Bounded remap**: removing one shard moves only the fingerprints
//!   that shard owned — everything else provably keeps its owner — and
//!   the moved fraction of a uniform sample stays ≤ ~2/N.
//! - **Usable balance**: with 64 vnodes/shard no shard owns a wildly
//!   disproportionate share (a loose bound; the CI cluster job depends on
//!   warm traffic reaching ≥2 of 3 shards).

use proptest::prelude::*;

use sdfr_api::shards::ShardMap;

fn peers(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
}

/// A deterministic fingerprint sample: splitmix-style spread of `i`, the
/// same family of values real graph fingerprints (FNV-1a) draw from.
fn sample(count: u64) -> impl Iterator<Item = u64> {
    (0..count).map(|i| {
        let mut z = i
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x1234_5678);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    })
}

proptest! {
    #[test]
    fn ownership_is_total_and_survives_the_wire(
        n in 1usize..=9,
        fp in proptest::arbitrary::any::<u64>(),
    ) {
        let map = ShardMap::new(peers(n)).unwrap();
        let owner = map.owner(fp);
        prop_assert!((owner as usize) < n);
        // A second derivation from the same peer list — what another
        // process does — agrees, as does the wire round trip.
        let again = ShardMap::new(peers(n)).unwrap();
        prop_assert_eq!(again.owner(fp), owner);
        let wired = ShardMap::from_json(&map.to_json()).unwrap();
        prop_assert_eq!(wired.owner(fp), owner);
        prop_assert_eq!(wired.successor(fp), map.successor(fp));
    }

    #[test]
    fn route_is_a_permutation_starting_at_the_owner(
        n in 1usize..=7,
        fp in proptest::arbitrary::any::<u64>(),
    ) {
        let map = ShardMap::new(peers(n)).unwrap();
        let route = map.route(fp);
        prop_assert_eq!(route.len(), n);
        prop_assert_eq!(route[0], map.owner(fp));
        let mut sorted = route.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        if n > 1 {
            prop_assert_eq!(map.successor(fp), Some(route[1]));
        } else {
            prop_assert_eq!(map.successor(fp), None);
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys(
        n in 2usize..=8,
        removed_raw in proptest::arbitrary::any::<u32>(),
    ) {
        let removed = removed_raw % n as u32;
        let map = ShardMap::new(peers(n)).unwrap();
        let shrunk = map.without(removed);
        prop_assert_eq!(shrunk.live_shards(), n - 1);
        let mut moved = 0u64;
        let total = 4096u64;
        for fp in sample(total) {
            let before = map.owner(fp);
            let after = shrunk.owner(fp);
            if before == removed {
                // Orphans land exactly on their ring successor — the
                // shard the failover cascade tries next, which is what
                // makes failover placement-coherent.
                prop_assert_eq!(after, map.successor(fp).unwrap());
                moved += 1;
            } else {
                // Everyone else keeps their owner: the bounded-remap
                // guarantee that makes shard loss cheap.
                prop_assert_eq!(after, before);
            }
        }
        // The removed shard owned ~1/n of a uniform sample; allow 2/n
        // for vnode placement variance.
        let bound = (2 * total) / n as u64;
        prop_assert!(
            moved <= bound,
            "removing shard {} moved {}/{} keys (bound {})",
            removed, moved, total, bound
        );
    }

    #[test]
    fn no_shard_is_starved_or_overloaded(n in 2usize..=6, seed in proptest::arbitrary::any::<u32>()) {
        let map = ShardMap::new(peers(n)).unwrap();
        let mut counts = vec![0u64; n];
        let total = 4096u64;
        for fp in sample(total).map(|fp| fp ^ u64::from(seed)) {
            counts[map.owner(fp) as usize] += 1;
        }
        let fair = total / n as u64;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count >= fair / 3 && count <= fair * 3,
                "shard {} owns {}/{} keys (fair share {})",
                shard, count, total, fair
            );
        }
    }
}

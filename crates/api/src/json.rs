//! A minimal, dependency-free JSON reader and string escaper.
//!
//! The `sdfr-api/1` wire format needs exactly the JSON subset implemented
//! here: objects, arrays, strings (with the standard escapes), integers,
//! booleans and `null`. Floating-point numbers are deliberately rejected —
//! no field of the schema carries one, and refusing them keeps every
//! accepted document bit-exact on round-trip. Depth is bounded so a
//! malicious request cannot overflow the parser's stack.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`]. The deepest legitimate
/// `sdfr-api/1` document is 3 levels (request → graphs array → object).
const MAX_DEPTH: usize = 16;

/// A parsed JSON value (integers only; see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer in the `i128` range (covers `u64` and `i64` fields).
    Int(i128),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (duplicate keys are rejected).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object value; `None` for absent keys and
    /// non-object values alike.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer as a `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why a document was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input position.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offence: malformed
/// syntax, floats/exponents, duplicate object keys, nesting deeper than
/// the fixed depth cap, or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of sdfr-api/1"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // encoding is already valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated unicode escape"));
        };
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Renders a JSON string literal: quotes, backslashes and control
/// characters escaped. This is the one string escaper every `sdfr-api/1`
/// serializer uses.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shape() {
        let doc = r#"{"schema":"sdfr-api/1","graphs":[{"name":"a.sdf","content":"graph a\n"}],"tiers":[10,100],"max_firings":500,"deadline_ms":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("sdfr-api/1"));
        let graphs = v.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("a.sdf"));
        assert_eq!(
            graphs[0].get("content").unwrap().as_str(),
            Some("graph a\n")
        );
        let tiers: Vec<u64> = v
            .get("tiers")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|t| t.as_u64().unwrap())
            .collect();
        assert_eq!(tiers, vec![10, 100]);
        assert_eq!(v.get("max_firings").unwrap().as_u64(), Some(500));
        assert_eq!(v.get("deadline_ms"), Some(&Value::Null));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["plain", "a\"b\\c", "x\n\t\u{1}", "naïve ✓", "sur\u{10348}"] {
            let doc = escape_str(s);
            assert_eq!(parse(&doc).unwrap(), Value::Str(s.to_string()), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "1.5",
            "1e3",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "\"unterminated",
            "nul",
            "\u{1}",
        ] {
            assert!(parse(doc).is_err(), "should reject: {doc:?}");
        }
        // Depth bomb: 32 nested arrays exceed MAX_DEPTH.
        let bomb = format!("{}1{}", "[".repeat(32), "]".repeat(32));
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\u0041\ud800\udf48b""#).unwrap(),
            Value::Str("aA\u{10348}b".to_string())
        );
        assert!(parse(r#""\ud800x""#).is_err(), "unpaired surrogate");
        assert_eq!(
            parse(r#""\/\b\f""#).unwrap(),
            Value::Str("/\u{8}\u{c}".to_string())
        );
    }

    #[test]
    fn integers_have_full_u64_range() {
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("-1").unwrap(), Value::Int(-1));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}

//! The versioned request/response API shared by every `sdfr` front-end.
//!
//! Before this crate, each front-end improvised its own JSON: `sdfr batch`
//! rendered ad-hoc lines, and adding a server would have meant a third
//! dialect. `sdfr-api` is the single source of truth for the wire format:
//! `sdfr analyze --json`, `sdfr batch` JSON-lines, and the `sdfr serve`
//! HTTP body all serialize the **same types** defined here, stamped with
//! the schema tag [`SCHEMA`] (`"sdfr-api/1"`).
//!
//! # Schema `sdfr-api/1`
//!
//! Every emitted object carries `"schema":"sdfr-api/1"` as its first
//! field. Consumers should dispatch on the major version (the integer
//! after the `/`) and reject majors they do not understand — the CLI's
//! `--api-version` flag and the server's request validation both enforce
//! this with [`check_requested_version`] / [`check_schema`].
//!
//! The document kinds are:
//!
//! - [`AnalysisRequest`] — what a client POSTs to `/v1/analyze`,
//!   `/v1/batch`, `/v1/csdf` and `/v1/sadf`: inline graph sources plus
//!   budget caps, either flat (the original shape, implicitly plain SDF)
//!   or wrapped in a tagged `"workload"` object carrying a
//!   [`WorkloadKind`] token,
//! - [`UnitRecord`] — one analysis result (one graph × one budget tier),
//! - [`BatchSummary`] — the trailing aggregate of a batch, folding
//!   [`OutcomeAggregate`], per-exit-code counts and [`RegistryStats`],
//! - [`CsdfRecord`] — one cyclo-static analysis result,
//! - [`ErrorBody`] — a structured request-level failure,
//! - [`registry_stats_json`] / [`pool_stats_json`] — the one place
//!   [`RegistryStats`] and [`sdfr_pool::PoolStats`] serialize.
//!
//! # Deprecated pre-schema field names
//!
//! `sdfr-api/1` replaced the unversioned batch lines of earlier releases.
//! Two things changed; both are deliberate and documented here once:
//!
//! - records gained the leading `"schema"` field (previously absent — the
//!   only way to detect the dialect was to guess),
//! - `"method"` now carries the stable tokens `"abstraction"` /
//!   `"serialization"` ([`sdfr_core::degrade::FallbackMethod::token`]);
//!   the old value was the
//!   human-facing label (`"abstraction (Thm. 1)"`), which consumers had
//!   to string-match against. The label remains available for humans via
//!   `Display`.
//!
//! Field *names* (`index`, `file`, `tier`, `fingerprint`, `cache`,
//! `status`, `period`, `bound`, `exit`, `summary`, …) are unchanged from
//! the unversioned dialect, so a consumer migrating to `sdfr-api/1` only
//! needs to accept the two changes above.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod json;
pub mod shards;

use std::fmt::Write as _;
use std::time::Duration;

use sdfr_analysis::registry::RegistryStats;
use sdfr_core::degrade::{AnalysisOutcome, OutcomeAggregate};
use sdfr_graph::budget::Budget;

use crate::json::{escape_str, Value};

/// The schema tag stamped on every `sdfr-api/1` document.
pub const SCHEMA: &str = "sdfr-api/1";

/// The major version this library speaks.
pub const MAJOR: u64 = 1;

/// Exit code: success (including a degraded-but-safe answer).
pub const EXIT_OK: i32 = 0;
/// Exit code: the input graph or analysis request is invalid.
pub const EXIT_INVALID: i32 = 1;
/// Exit code: the command line (or request) itself is unusable.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: a file could not be read or written.
pub const EXIT_IO: i32 = 3;
/// Exit code: a resource budget was exhausted with no safe fallback.
pub const EXIT_EXHAUSTED: i32 = 4;
/// Exit code: an internal panic was caught (a bug, not a user error).
pub const EXIT_PANIC: i32 = 70;

/// Maps the per-unit exit-code discipline onto HTTP status codes, so the
/// server's statuses and the CLI's exit codes express one policy:
/// degraded-but-safe is success (`200`), invalid input and fallback-less
/// exhaustion are the client's fault (`422`), unusable requests are `400`,
/// unreadable inputs are `404`, and panics are `500`.
pub fn http_status_for_exit(exit: i32) -> u16 {
    match exit {
        EXIT_OK => 200,
        EXIT_INVALID | EXIT_EXHAUSTED => 422,
        EXIT_USAGE => 400,
        EXIT_IO => 404,
        _ => 500,
    }
}

/// Validates a user-requested API version (the CLI `--api-version` flag).
/// Accepts the full tag (`sdfr-api/1`) or the bare major (`1`).
///
/// Only the **major** is guarded: minor suffixes after a `.` (`1.9`,
/// `sdfr-api/1.4`) are forward-compatible and accepted, mirroring
/// [`check_schema`] — a client pinned to a future minor keeps working
/// against this build, which simply emits the fields it knows.
///
/// # Errors
///
/// A usage message naming the supported version; the CLI maps it to exit
/// code [`EXIT_USAGE`].
pub fn check_requested_version(requested: &str) -> Result<(), String> {
    let version = requested
        .strip_prefix("sdfr-api/")
        .unwrap_or(requested)
        .trim();
    let major = version.split('.').next().unwrap_or(version);
    match major.parse::<u64>() {
        Ok(m) if m == MAJOR => Ok(()),
        Ok(m) => Err(format!(
            "--api-version: major version {m} is not supported (this build speaks {SCHEMA})"
        )),
        Err(_) => Err(format!(
            "--api-version: '{requested}' is not a version (try {MAJOR} or {SCHEMA})"
        )),
    }
}

/// Validates the `"schema"` field of an incoming document: it must be
/// `sdfr-api/<major>` with a major this library speaks. Minor suffixes
/// after a `.` are tolerated (`sdfr-api/1.2` parses as major 1).
///
/// # Errors
///
/// A message naming the supported schema; servers map it to a `400` with
/// [`ErrorBody`] code `unsupported-schema`.
pub fn check_schema(schema: &str) -> Result<(), String> {
    let Some(version) = schema.strip_prefix("sdfr-api/") else {
        return Err(format!(
            "schema '{schema}' is not an sdfr-api schema (this build speaks {SCHEMA})"
        ));
    };
    let major = version.split('.').next().unwrap_or(version);
    match major.parse::<u64>() {
        Ok(m) if m == MAJOR => Ok(()),
        _ => Err(format!(
            "schema '{schema}' has an unsupported major version (this build speaks {SCHEMA})"
        )),
    }
}

/// The kind of workload a request or record concerns. `sdfr-api/1`
/// started with plain SDF only (requests had no kind at all); the tagged
/// request shape and the per-record `"workload_kind"` field generalize
/// the dialect to cyclo-static graphs and scenario-aware workloads
/// without a major bump — see the "Dialect evolution" notes in the
/// repository README.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum WorkloadKind {
    /// A plain synchronous dataflow graph (the original, implicit kind).
    #[default]
    Sdf,
    /// A cyclo-static dataflow graph.
    Csdf,
    /// A scenario-aware workload: named SDF scenarios plus a scenario FSM.
    Sadf,
}

impl WorkloadKind {
    /// Every kind token this build understands, ascending by token — the
    /// machine-readable `"supported"` list of an `unsupported-kind` error.
    pub const SUPPORTED: &'static [&'static str] = &["csdf", "sadf", "sdf"];

    /// The stable wire token (`"sdf"` / `"csdf"` / `"sadf"`).
    pub const fn token(self) -> &'static str {
        match self {
            WorkloadKind::Sdf => "sdf",
            WorkloadKind::Csdf => "csdf",
            WorkloadKind::Sadf => "sadf",
        }
    }

    /// Parses a wire token; `None` for kinds this build does not speak.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "sdf" => Some(WorkloadKind::Sdf),
            "csdf" => Some(WorkloadKind::Csdf),
            "sadf" => Some(WorkloadKind::Sadf),
            _ => None,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// One inline graph source: a display name (used for format detection and
/// reporting — it is never opened as a path by the server) plus the full
/// file content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSource {
    /// Display name; a trailing `.xml` selects the XML parser.
    pub name: String,
    /// The graph description (text format or SDF3-style XML).
    pub content: String,
}

/// A request against `/v1/analyze`, `/v1/batch` or `/v1/csdf`: one or
/// more inline graphs, optional `--tiers`-style firing caps, and the
/// budget fields of the CLI.
///
/// `deadline_ms` is a *response deadline*, not an analysis budget: the
/// server answers within it (serving a conservative degraded bound if the
/// exact analysis is still warming), while `max_firings`/`max_size` are
/// content-addressable caps that participate in the server's session
/// cache key exactly as they do in `sdfr batch`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisRequest {
    /// What the inline sources describe. Flat (pre-workload) requests are
    /// always [`WorkloadKind::Sdf`] — `/v1/csdf` historically reused the
    /// flat shape, so the kind is authoritative only in tagged requests;
    /// routes keep working either way.
    pub kind: WorkloadKind,
    /// `true` when the request was (or should be) serialized in the
    /// tagged `{"workload":{"kind":...}}` shape; `false` reproduces the
    /// original flat `sdfr-api/1` shape byte-for-byte. Round-trips: a
    /// parsed request re-serializes in the shape it arrived in.
    pub tagged: bool,
    /// The graphs to analyze, in order.
    pub graphs: Vec<GraphSource>,
    /// Firing-cap tiers; each graph is analysed once per tier (empty =
    /// once under the base caps).
    pub tiers: Vec<u64>,
    /// Response deadline in milliseconds (see the type docs).
    pub deadline_ms: Option<u64>,
    /// `--max-firings` cap (content-addressable, part of the cache key).
    pub max_firings: Option<u64>,
    /// `--max-size` cap (content-addressable, part of the cache key).
    pub max_size: Option<u64>,
    /// Caller-assigned global unit indices, one per `graphs × tiers` unit
    /// in file-major order. A sharded client splits one logical batch
    /// across shard sub-requests; this field lets each shard stamp the
    /// *global* `"index"` into its records so the client can merge the
    /// streams back into the exact single-server byte sequence. Absent
    /// (the default) the server numbers units 0.. itself.
    pub indices: Option<Vec<usize>>,
}

/// Why an [`AnalysisRequest`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The document's schema major is not supported (HTTP 400,
    /// [`ErrorBody`] code `unsupported-schema`).
    UnsupportedSchema(String),
    /// The tagged workload names a kind this build does not speak (HTTP
    /// 400, code `unsupported-kind`, with [`WorkloadKind::SUPPORTED`] as
    /// the machine-readable `"supported"` list).
    UnsupportedKind(String),
    /// The document is not a valid request (HTTP 400, code `bad-request`).
    Malformed(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnsupportedSchema(m)
            | RequestError::UnsupportedKind(m)
            | RequestError::Malformed(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for RequestError {}

impl AnalysisRequest {
    /// Serializes the request as one `sdfr-api/1` JSON object.
    ///
    /// A flat request (`tagged == false`) renders exactly the original
    /// `sdfr-api/1` shape, byte-for-byte; a tagged one nests the same
    /// fields under `"workload"` with the `"kind"` token first:
    /// `{"schema":"sdfr-api/1","workload":{"kind":"sadf","graphs":[…],…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"schema\":{},", escape_str(SCHEMA));
        if self.tagged {
            let _ = write!(out, "\"workload\":{{\"kind\":\"{}\",", self.kind.token());
        }
        out.push_str("\"graphs\":[");
        for (i, g) in self.graphs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"content\":{}}}",
                escape_str(&g.name),
                escape_str(&g.content)
            );
        }
        out.push_str("],\"tiers\":[");
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        out.push(']');
        for (key, v) in [
            ("deadline_ms", self.deadline_ms),
            ("max_firings", self.max_firings),
            ("max_size", self.max_size),
        ] {
            if let Some(v) = v {
                let _ = write!(out, ",\"{key}\":{v}");
            }
        }
        if let Some(indices) = &self.indices {
            out.push_str(",\"indices\":[");
            for (i, idx) in indices.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{idx}");
            }
            out.push(']');
        }
        if self.tagged {
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses and validates a request document.
    ///
    /// # Errors
    ///
    /// [`RequestError::UnsupportedSchema`] for a missing or unsupported
    /// `"schema"`, [`RequestError::UnsupportedKind`] for a tagged
    /// workload whose `"kind"` this build does not speak, and
    /// [`RequestError::Malformed`] for everything else (syntax, types,
    /// no graphs, oversized tier lists).
    ///
    /// Both shapes parse: the original flat fields (back-compatible, kind
    /// defaults to `sdf`) and the tagged `{"workload":{"kind":…}}` form.
    pub fn from_json(doc: &str) -> Result<Self, RequestError> {
        let v = json::parse(doc).map_err(|e| RequestError::Malformed(e.to_string()))?;
        let schema = v.get("schema").and_then(Value::as_str).ok_or_else(|| {
            RequestError::UnsupportedSchema("request has no \"schema\" field".into())
        })?;
        check_schema(schema).map_err(RequestError::UnsupportedSchema)?;

        // Dispatch on the shape: a "workload" key selects the tagged
        // form; its fields are the flat fields, nested one level down.
        let (body, kind, tagged) = match v.get("workload") {
            None => (&v, WorkloadKind::Sdf, false),
            Some(w) => {
                if !matches!(w, Value::Obj(_)) {
                    return Err(RequestError::Malformed(
                        "\"workload\" must be an object".into(),
                    ));
                }
                let token = w.get("kind").and_then(Value::as_str).ok_or_else(|| {
                    RequestError::Malformed("\"workload\" needs a \"kind\" token".into())
                })?;
                let kind = WorkloadKind::from_token(token).ok_or_else(|| {
                    RequestError::UnsupportedKind(format!(
                        "workload kind '{token}' is not supported"
                    ))
                })?;
                (w, kind, true)
            }
        };

        let mut graphs = Vec::new();
        let graph_values = body
            .get("graphs")
            .and_then(Value::as_arr)
            .ok_or_else(|| RequestError::Malformed("\"graphs\" must be an array".into()))?;
        for g in graph_values {
            let name = g
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| RequestError::Malformed("graph entry needs a \"name\"".into()))?;
            let content = g
                .get("content")
                .and_then(Value::as_str)
                .ok_or_else(|| RequestError::Malformed("graph entry needs a \"content\"".into()))?;
            graphs.push(GraphSource {
                name: name.to_string(),
                content: content.to_string(),
            });
        }
        if graphs.is_empty() {
            return Err(RequestError::Malformed(
                "request needs at least one graph".into(),
            ));
        }

        let mut tiers = Vec::new();
        if let Some(t) = body.get("tiers") {
            let items = t
                .as_arr()
                .ok_or_else(|| RequestError::Malformed("\"tiers\" must be an array".into()))?;
            for item in items {
                tiers.push(item.as_u64().ok_or_else(|| {
                    RequestError::Malformed(
                        "\"tiers\" entries must be non-negative integers".into(),
                    )
                })?);
            }
        }

        let uint = |key: &str| -> Result<Option<u64>, RequestError> {
            match body.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(value) => value.as_u64().map(Some).ok_or_else(|| {
                    RequestError::Malformed(format!(
                        "\"{key}\" must be a non-negative integer or null"
                    ))
                }),
            }
        };
        let indices = match body.get("indices") {
            None | Some(Value::Null) => None,
            Some(value) => {
                let items = value.as_arr().ok_or_else(|| {
                    RequestError::Malformed("\"indices\" must be an array".into())
                })?;
                let mut indices = Vec::with_capacity(items.len());
                for item in items {
                    let idx = item
                        .as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| {
                            RequestError::Malformed(
                                "\"indices\" entries must be non-negative integers".into(),
                            )
                        })?;
                    indices.push(idx);
                }
                let units = graphs.len() * tiers.len().max(1);
                if indices.len() != units {
                    return Err(RequestError::Malformed(format!(
                        "\"indices\" has {} entries for {units} unit(s)",
                        indices.len()
                    )));
                }
                Some(indices)
            }
        };
        Ok(AnalysisRequest {
            kind,
            tagged,
            graphs,
            tiers,
            deadline_ms: uint("deadline_ms")?,
            max_firings: uint("max_firings")?,
            max_size: uint("max_size")?,
            indices,
        })
    }

    /// The content-addressable budget of this request: the firing/size
    /// caps only. The response deadline deliberately does **not** become a
    /// wall-clock [`Budget`] deadline — that would make every server
    /// session bypass the registry (deadline budgets are caller-specific)
    /// and defeat the cross-invocation cache. See the type docs.
    pub fn caps_budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(n) = self.max_firings {
            budget = budget.with_max_firings(n);
        }
        if let Some(n) = self.max_size {
            budget = budget.with_max_size(n);
        }
        budget
    }

    /// The response deadline as a [`Duration`], if one was requested.
    pub fn wait_deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }
}

/// The analysis outcome of one unit, as serialized in `"status"` and its
/// companion fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitStatus {
    /// `"status":"exact"` — the exact iteration period (`None` = no
    /// recurrent constraint; serialized as `"period":null`).
    Exact {
        /// The period, pre-rendered (rationals print as `"p/q"`).
        period: Option<String>,
    },
    /// `"status":"degraded"` — a conservative upper bound stands in.
    Degraded {
        /// The bound, pre-rendered.
        bound: String,
        /// The stable method token
        /// ([`sdfr_core::degrade::FallbackMethod::token`]).
        method: &'static str,
    },
    /// `"status":"error"` — the unit produced no result.
    Error {
        /// The human-readable error message.
        message: String,
    },
}

impl UnitStatus {
    /// Builds the status from a library-level [`AnalysisOutcome`].
    pub fn from_outcome(outcome: &AnalysisOutcome) -> Self {
        match outcome {
            AnalysisOutcome::Exact(p) => UnitStatus::Exact {
                period: p.map(|p| p.to_string()),
            },
            AnalysisOutcome::Degraded { bound, .. } => UnitStatus::Degraded {
                bound: bound.bound.to_string(),
                method: bound.method.token(),
            },
        }
    }
}

/// The per-scenario results of a scenario-aware unit, rendered as the
/// record's `"scenarios"` sub-object:
/// `"scenarios":{"periods":{"fast":"3","slow":"9"},"cycle":["s0","s1"]}`.
/// `periods` maps each scenario (declaration order) to its standalone
/// eigenvalue (`null` when the scenario has no recurrent constraint);
/// `cycle` is a worst-case-critical closed FSM walk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioSet {
    /// `(scenario name, rendered eigenvalue)` in declaration order.
    pub periods: Vec<(String, Option<String>)>,
    /// The state names of one critical FSM cycle (empty on degradation).
    pub cycle: Vec<String>,
}

impl ScenarioSet {
    fn write_json(&self, out: &mut String) {
        out.push_str(",\"scenarios\":{\"periods\":{");
        for (i, (name, period)) in self.periods.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{}",
                escape_str(name),
                period.as_deref().map_or("null".to_string(), escape_str)
            );
        }
        out.push_str("},\"cycle\":[");
        for (i, state) in self.cycle.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_str(state));
        }
        out.push_str("]}");
    }
}

/// One analysis result — one graph under one budget tier — as one
/// `sdfr-api/1` JSON line. This is the record `sdfr analyze --json`
/// prints, `sdfr batch` streams per unit, and `sdfr serve` returns from
/// `/v1/analyze` and `/v1/batch`.
///
/// The optional fields keep the three front-ends byte-compatible where
/// they genuinely coincide: a standalone `analyze` has no batch `index`,
/// no `tier` and no meaningful cache attribution, so those fields are
/// omitted rather than invented — which is what makes a warm server's
/// `/v1/analyze` response byte-identical to the in-process output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRecord {
    /// What the unit analysed (`"workload_kind"`, right after
    /// `"schema"`): every record self-describes its dialect so mixed-kind
    /// batch streams need no out-of-band context.
    pub workload_kind: WorkloadKind,
    /// Position in the batch (`"index"`), omitted for standalone analyze.
    pub index: Option<usize>,
    /// The display name / path of the graph.
    pub file: String,
    /// `Some(tier)` renders `"tier":N` / `"tier":null`; `None` omits the
    /// field entirely (standalone analyze).
    pub tier: Option<Option<u64>>,
    /// The graph's content fingerprint, when the graph parsed.
    pub fingerprint: Option<u64>,
    /// Cache attribution (`"hit"`/`"miss"`/`"bypass"`), batch fronts only.
    pub cache: Option<&'static str>,
    /// `true` when the server answered a degraded bound within the
    /// response deadline while the exact analysis keeps warming in the
    /// background (`"pending":true`; omitted when `false`).
    pub pending: bool,
    /// The outcome.
    pub status: UnitStatus,
    /// Per-scenario results of a scenario-aware unit (`None` for plain
    /// SDF units and for degraded scenario units, keeping degraded lines
    /// deterministic).
    pub scenarios: Option<ScenarioSet>,
    /// The unit's exit code under the CLI discipline (degraded-but-safe
    /// is `0`), so clients never re-derive it from `status`.
    pub exit: i32,
}

impl UnitRecord {
    /// A minimal record for a standalone analyze (no batch fields).
    pub fn standalone(file: impl Into<String>, status: UnitStatus, exit: i32) -> Self {
        UnitRecord {
            workload_kind: WorkloadKind::Sdf,
            index: None,
            file: file.into(),
            tier: None,
            fingerprint: None,
            cache: None,
            pending: false,
            status,
            scenarios: None,
            exit,
        }
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"schema\":{},\"workload_kind\":\"{}\"",
            escape_str(SCHEMA),
            self.workload_kind.token()
        );
        if let Some(index) = self.index {
            let _ = write!(out, ",\"index\":{index}");
        }
        let _ = write!(out, ",\"file\":{}", escape_str(&self.file));
        if let Some(tier) = self.tier {
            match tier {
                Some(t) => {
                    let _ = write!(out, ",\"tier\":{t}");
                }
                None => out.push_str(",\"tier\":null"),
            }
        }
        if let Some(fp) = self.fingerprint {
            let _ = write!(out, ",\"fingerprint\":\"{fp:016x}\"");
        }
        if let Some(cache) = self.cache {
            let _ = write!(out, ",\"cache\":\"{cache}\"");
        }
        match &self.status {
            UnitStatus::Exact { period } => {
                let _ = write!(
                    out,
                    ",\"status\":\"exact\",\"period\":{}",
                    period.as_deref().map_or("null".to_string(), escape_str)
                );
            }
            UnitStatus::Degraded { bound, method } => {
                let _ = write!(
                    out,
                    ",\"status\":\"degraded\",\"bound\":{},\"method\":\"{method}\"",
                    escape_str(bound)
                );
            }
            UnitStatus::Error { message } => {
                let _ = write!(
                    out,
                    ",\"status\":\"error\",\"error\":{}",
                    escape_str(message)
                );
            }
        }
        if let Some(scenarios) = &self.scenarios {
            scenarios.write_json(&mut out);
        }
        if self.pending {
            out.push_str(",\"pending\":true");
        }
        let _ = write!(out, ",\"exit\":{}}}", self.exit);
        out
    }
}

/// The trailing summary of a batch: outcome counts, per-exit-code counts,
/// a [`RegistryStats`] snapshot, and the batch exit code (the numeric
/// maximum over units).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Outcome counts over all units.
    pub aggregate: OutcomeAggregate,
    /// `(exit code, count)` pairs, ascending by code — the per-unit exit
    /// discipline made visible at batch level.
    pub exit_counts: Vec<(i32, u64)>,
    /// `(workload kind token, count)` pairs, ascending by token — how
    /// many units of each kind the batch held. Like `exit_counts` this
    /// histogram is additive over disjoint unit sets, so
    /// [`BatchSummary::merge`] stays associative over mixed-kind batches.
    pub kind_counts: Vec<(&'static str, u64)>,
    /// The session-cache counters backing the batch.
    pub registry: RegistryStats,
    /// The batch exit code: the numerically largest per-unit code.
    pub exit: i32,
}

impl BatchSummary {
    /// Assembles the summary from per-unit exit codes, per-unit workload
    /// kinds and the aggregate.
    pub fn new(
        aggregate: OutcomeAggregate,
        unit_exits: &[i32],
        unit_kinds: &[WorkloadKind],
        registry: RegistryStats,
    ) -> Self {
        let mut exit_counts: Vec<(i32, u64)> = Vec::new();
        for &code in unit_exits {
            match exit_counts.binary_search_by_key(&code, |&(c, _)| c) {
                Ok(i) => exit_counts[i].1 += 1,
                Err(i) => exit_counts.insert(i, (code, 1)),
            }
        }
        let mut kind_counts: Vec<(&'static str, u64)> = Vec::new();
        for &kind in unit_kinds {
            let token = kind.token();
            match kind_counts.binary_search_by_key(&token, |&(t, _)| t) {
                Ok(i) => kind_counts[i].1 += 1,
                Err(i) => kind_counts.insert(i, (token, 1)),
            }
        }
        let exit = unit_exits.iter().copied().max().unwrap_or(EXIT_OK);
        BatchSummary {
            aggregate,
            exit_counts,
            kind_counts,
            registry,
            exit,
        }
    }

    /// Renders the summary as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":{},\"summary\":true,{}",
            escape_str(SCHEMA),
            outcome_aggregate_json(&self.aggregate)
        );
        out.push_str(",\"exits\":{");
        for (i, (code, count)) in self.exit_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{code}\":{count}");
        }
        out.push_str("},\"kinds\":{");
        for (i, (token, count)) in self.kind_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{token}\":{count}");
        }
        let _ = write!(
            out,
            "}},\"cache\":{},\"exit\":{}}}",
            registry_stats_json(&self.registry),
            self.exit
        );
        out
    }

    /// Parses a summary line back into its counters — the inverse of
    /// [`BatchSummary::to_json_line`] for every field that serialization
    /// carries (`RegistryStats::near_hits` is not on the wire and comes
    /// back as 0). The sharded client uses this to merge per-shard
    /// summaries into the single-server line.
    ///
    /// # Errors
    ///
    /// [`RequestError::Malformed`] when `line` is not a `sdfr-api/1`
    /// summary object.
    pub fn from_json_line(line: &str) -> Result<BatchSummary, RequestError> {
        let v = json::parse(line).map_err(|e| RequestError::Malformed(e.to_string()))?;
        if v.get("summary") != Some(&Value::Bool(true)) {
            return Err(RequestError::Malformed("not a batch summary line".into()));
        }
        check_schema(v.get("schema").and_then(Value::as_str).unwrap_or(""))
            .map_err(RequestError::UnsupportedSchema)?;
        let count = |key: &str| -> Result<u64, RequestError> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| RequestError::Malformed(format!("summary is missing \"{key}\"")))
        };
        let aggregate = OutcomeAggregate {
            exact: count("exact")?,
            degraded_abstraction: count("degraded_abstraction")?,
            degraded_serialization: count("degraded_serialization")?,
            errors: count("errors")?,
        };
        let Some(Value::Obj(exit_fields)) = v.get("exits") else {
            return Err(RequestError::Malformed(
                "summary is missing \"exits\"".into(),
            ));
        };
        let mut exit_counts = Vec::with_capacity(exit_fields.len());
        for (code, n) in exit_fields {
            let code: i32 = code.parse().map_err(|_| {
                RequestError::Malformed(format!("unreadable exit code key {code:?}"))
            })?;
            let n = n.as_u64().ok_or_else(|| {
                RequestError::Malformed("exit counts must be non-negative integers".into())
            })?;
            exit_counts.push((code, n));
        }
        exit_counts.sort_unstable_by_key(|&(code, _)| code);
        // "kinds" is newer than the summary line itself: absent (an older
        // producer) means empty, and tokens from a *newer* producer that
        // this build does not speak are skipped rather than fatal — the
        // merged line only ever re-renders tokens both sides understand.
        let mut kind_counts: Vec<(&'static str, u64)> = Vec::new();
        if let Some(Value::Obj(kind_fields)) = v.get("kinds") {
            for (token, n) in kind_fields {
                let Some(kind) = WorkloadKind::from_token(token) else {
                    continue;
                };
                let n = n.as_u64().ok_or_else(|| {
                    RequestError::Malformed("kind counts must be non-negative integers".into())
                })?;
                kind_counts.push((kind.token(), n));
            }
            kind_counts.sort_unstable_by_key(|&(token, _)| token);
        }
        let cache = v
            .get("cache")
            .ok_or_else(|| RequestError::Malformed("summary is missing \"cache\"".into()))?;
        let stat = |key: &str| -> Result<u64, RequestError> {
            cache.get(key).and_then(Value::as_u64).ok_or_else(|| {
                RequestError::Malformed(format!("summary cache is missing \"{key}\""))
            })
        };
        let registry = RegistryStats {
            hits: stat("hits")?,
            misses: stat("misses")?,
            bypasses: stat("bypasses")?,
            collisions: stat("collisions")?,
            evictions: stat("evictions")?,
            entries: usize::try_from(stat("entries")?).unwrap_or(usize::MAX),
            bytes_estimate: stat("bytes_estimate")?,
            symbolic_iterations: stat("symbolic_iterations")?,
            near_hits: 0,
        };
        let exit = v
            .get("exit")
            .and_then(Value::as_u64)
            .and_then(|n| i32::try_from(n).ok())
            .ok_or_else(|| RequestError::Malformed("summary is missing \"exit\"".into()))?;
        Ok(BatchSummary {
            aggregate,
            exit_counts,
            kind_counts,
            registry,
            exit,
        })
    }

    /// Folds per-shard summaries into one. Valid because a sharded batch
    /// *partitions* its units by fingerprint: every counter (outcomes,
    /// exits, cache hits/misses/entries/bytes/iterations) is additive
    /// across disjoint unit sets, and the batch exit code is the maximum.
    /// With that partition the merged line is byte-identical to what a
    /// single server holding all units would have produced.
    pub fn merge(parts: &[BatchSummary]) -> BatchSummary {
        let mut aggregate = OutcomeAggregate::default();
        let mut exit_counts: Vec<(i32, u64)> = Vec::new();
        let mut kind_counts: Vec<(&'static str, u64)> = Vec::new();
        let mut registry = RegistryStats::default();
        let mut exit = EXIT_OK;
        for part in parts {
            aggregate.exact += part.aggregate.exact;
            aggregate.degraded_abstraction += part.aggregate.degraded_abstraction;
            aggregate.degraded_serialization += part.aggregate.degraded_serialization;
            aggregate.errors += part.aggregate.errors;
            for &(code, n) in &part.exit_counts {
                match exit_counts.binary_search_by_key(&code, |&(c, _)| c) {
                    Ok(i) => exit_counts[i].1 += n,
                    Err(i) => exit_counts.insert(i, (code, n)),
                }
            }
            for &(token, n) in &part.kind_counts {
                match kind_counts.binary_search_by_key(&token, |&(t, _)| t) {
                    Ok(i) => kind_counts[i].1 += n,
                    Err(i) => kind_counts.insert(i, (token, n)),
                }
            }
            registry.hits += part.registry.hits;
            registry.misses += part.registry.misses;
            registry.bypasses += part.registry.bypasses;
            registry.collisions += part.registry.collisions;
            registry.evictions += part.registry.evictions;
            registry.entries += part.registry.entries;
            registry.bytes_estimate += part.registry.bytes_estimate;
            registry.symbolic_iterations += part.registry.symbolic_iterations;
            registry.near_hits += part.registry.near_hits;
            exit = exit.max(part.exit);
        }
        BatchSummary {
            aggregate,
            exit_counts,
            kind_counts,
            registry,
            exit,
        }
    }
}

/// The shared [`OutcomeAggregate`] serialization: the comma-separated
/// `"total"…"errors"` fields (no surrounding braces — callers embed it).
pub fn outcome_aggregate_json(agg: &OutcomeAggregate) -> String {
    format!(
        "\"total\":{},\"exact\":{},\"degraded\":{},\"degraded_abstraction\":{},\
         \"degraded_serialization\":{},\"errors\":{}",
        agg.total(),
        agg.exact,
        agg.degraded(),
        agg.degraded_abstraction,
        agg.degraded_serialization,
        agg.errors
    )
}

/// The shared [`RegistryStats`] serialization (a complete JSON object).
/// Both the batch summary's `"cache"` field and the server's `/v1/stats`
/// `"registry"` field embed exactly this.
pub fn registry_stats_json(stats: &RegistryStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"bypasses\":{},\"collisions\":{},\
         \"evictions\":{},\"entries\":{},\"bytes_estimate\":{},\"symbolic_iterations\":{}}}",
        stats.hits,
        stats.misses,
        stats.bypasses,
        stats.collisions,
        stats.evictions,
        stats.entries,
        stats.bytes_estimate,
        stats.symbolic_iterations
    )
}

/// The shared [`sdfr_pool::PoolStats`] serialization (a complete JSON
/// object), embedded by the server's `/v1/stats`.
pub fn pool_stats_json(stats: &sdfr_pool::PoolStats) -> String {
    format!(
        "{{\"threads\":{},\"spawned\":{},\"stolen\":{},\"executed\":{}}}",
        stats.threads, stats.spawned, stats.stolen, stats.executed
    )
}

/// One cyclo-static analysis result, as returned by `/v1/csdf` and
/// `sdfr csdf --json`: the iteration period plus the compact-HSDF
/// reduction sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfRecord {
    /// The display name / path of the graph.
    pub file: String,
    /// The outcome; `Degraded` is unused (CSDF analysis has no budget
    /// fallback), errors carry the message.
    pub status: UnitStatus,
    /// Phase firings per iteration, when the analysis succeeded.
    pub phase_firings: Option<u64>,
    /// `(actors, channels, tokens)` of the compact HSDF reduction, when
    /// the analysis succeeded.
    pub hsdf: Option<(usize, usize, u64)>,
    /// The unit's exit code under the CLI discipline.
    pub exit: i32,
}

impl CsdfRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"schema\":{},\"workload_kind\":\"{}\",\"file\":{}",
            escape_str(SCHEMA),
            WorkloadKind::Csdf.token(),
            escape_str(&self.file)
        );
        match &self.status {
            UnitStatus::Exact { period } => {
                let _ = write!(
                    out,
                    ",\"status\":\"exact\",\"period\":{}",
                    period.as_deref().map_or("null".to_string(), escape_str)
                );
            }
            UnitStatus::Degraded { bound, method } => {
                let _ = write!(
                    out,
                    ",\"status\":\"degraded\",\"bound\":{},\"method\":\"{method}\"",
                    escape_str(bound)
                );
            }
            UnitStatus::Error { message } => {
                let _ = write!(
                    out,
                    ",\"status\":\"error\",\"error\":{}",
                    escape_str(message)
                );
            }
        }
        if let Some(f) = self.phase_firings {
            let _ = write!(out, ",\"phase_firings\":{f}");
        }
        if let Some((actors, channels, tokens)) = self.hsdf {
            let _ = write!(
                out,
                ",\"hsdf_actors\":{actors},\"hsdf_channels\":{channels},\"hsdf_tokens\":{tokens}"
            );
        }
        let _ = write!(out, ",\"exit\":{}}}", self.exit);
        out
    }
}

/// A structured request-level failure: what the server returns for
/// malformed, oversized, timed-out or shed requests (never for per-unit
/// analysis failures, which ride in [`UnitRecord`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// A stable machine-readable code: `bad-request`,
    /// `unsupported-schema`, `unsupported-kind`, `not-found`,
    /// `method-not-allowed`, `timeout`, `payload-too-large`,
    /// `overloaded`, `draining`, `internal`.
    pub code: &'static str,
    /// A human-readable message.
    pub message: String,
    /// A machine-readable list of accepted tokens, when the error is
    /// "you asked for a token this build does not speak" (rendered as
    /// `"supported":[…]` before `"exit"`; omitted otherwise). The
    /// `unsupported-kind` code always carries
    /// [`WorkloadKind::SUPPORTED`] here.
    pub supported: Option<&'static [&'static str]>,
    /// The exit code a CLI client should propagate.
    pub exit: i32,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(code: &'static str, message: impl Into<String>, exit: i32) -> Self {
        ErrorBody {
            code,
            message: message.into(),
            supported: None,
            exit,
        }
    }

    /// Attaches the machine-readable `"supported"` token list.
    pub fn with_supported(mut self, supported: &'static [&'static str]) -> Self {
        self.supported = Some(supported);
        self
    }

    /// Renders the body as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":{},\"error\":true,\"code\":\"{}\",\"message\":{}",
            escape_str(SCHEMA),
            self.code,
            escape_str(&self.message),
        );
        if let Some(supported) = self.supported {
            out.push_str(",\"supported\":[");
            for (i, token) in supported.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{token}\"");
            }
            out.push(']');
        }
        let _ = write!(out, ",\"exit\":{}}}", self.exit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_core::degrade::{ConservativeBound, FallbackMethod};
    use sdfr_graph::SdfError;
    use sdfr_maxplus::Rational;

    #[test]
    fn request_round_trips() {
        let req = AnalysisRequest {
            kind: WorkloadKind::Sdf,
            tagged: false,
            graphs: vec![GraphSource {
                name: "demo.sdf".into(),
                content: "graph demo\nactor a 2\n".into(),
            }],
            tiers: vec![10, 100_000],
            deadline_ms: Some(250),
            max_firings: Some(500),
            max_size: None,
            indices: Some(vec![4, 6]),
        };
        let doc = req.to_json();
        assert!(doc.starts_with("{\"schema\":\"sdfr-api/1\",\"graphs\":["), "{doc}");
        let back = AnalysisRequest::from_json(&doc).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.caps_budget().max_firings(), Some(500));
        assert!(back.caps_budget().is_content_addressable());
        assert_eq!(back.wait_deadline(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn tagged_request_round_trips_in_its_own_shape() {
        let req = AnalysisRequest {
            kind: WorkloadKind::Sadf,
            tagged: true,
            graphs: vec![GraphSource {
                name: "w.sadf".into(),
                content: "sadf w\n".into(),
            }],
            deadline_ms: Some(100),
            ..AnalysisRequest::default()
        };
        let doc = req.to_json();
        assert!(
            doc.starts_with("{\"schema\":\"sdfr-api/1\",\"workload\":{\"kind\":\"sadf\","),
            "{doc}"
        );
        let back = AnalysisRequest::from_json(&doc).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_json(), doc);

        // A tagged sdf request and the flat shape parse to the same
        // semantics; only the shape flag differs.
        let flat = AnalysisRequest::from_json(
            r#"{"schema":"sdfr-api/1","graphs":[{"name":"a","content":"x"}]}"#,
        )
        .unwrap();
        let tagged = AnalysisRequest::from_json(
            r#"{"schema":"sdfr-api/1","workload":{"kind":"sdf","graphs":[{"name":"a","content":"x"}]}}"#,
        )
        .unwrap();
        assert!(!flat.tagged);
        assert!(tagged.tagged);
        assert_eq!(
            AnalysisRequest { tagged: false, ..tagged },
            flat
        );
    }

    #[test]
    fn unknown_workload_kind_is_rejected_with_the_supported_list() {
        let err = AnalysisRequest::from_json(
            r#"{"schema":"sdfr-api/1","workload":{"kind":"kpn","graphs":[{"name":"a","content":"x"}]}}"#,
        )
        .unwrap_err();
        assert!(matches!(err, RequestError::UnsupportedKind(_)), "{err:?}");
        let body =
            ErrorBody::new("unsupported-kind", err.to_string(), EXIT_USAGE)
                .with_supported(WorkloadKind::SUPPORTED);
        let json = body.to_json();
        assert!(
            json.contains("\"supported\":[\"csdf\",\"sadf\",\"sdf\"],\"exit\":2"),
            "{json}"
        );
        // A workload without a kind is malformed, not unsupported.
        assert!(matches!(
            AnalysisRequest::from_json(
                r#"{"schema":"sdfr-api/1","workload":{"graphs":[{"name":"a","content":"x"}]}}"#
            ),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn request_validation() {
        assert!(matches!(
            AnalysisRequest::from_json("{"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            AnalysisRequest::from_json(r#"{"graphs":[]}"#),
            Err(RequestError::UnsupportedSchema(_))
        ));
        assert!(matches!(
            AnalysisRequest::from_json(r#"{"schema":"sdfr-api/2","graphs":[]}"#),
            Err(RequestError::UnsupportedSchema(_))
        ));
        assert!(matches!(
            AnalysisRequest::from_json(r#"{"schema":"sdfr-api/1","graphs":[]}"#),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            AnalysisRequest::from_json(r#"{"schema":"sdfr-api/1","graphs":[{"name":"a"}]}"#),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            AnalysisRequest::from_json(
                r#"{"schema":"sdfr-api/1","graphs":[{"name":"a","content":"x"}],"tiers":[-1]}"#
            ),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn version_checks() {
        assert!(check_requested_version("1").is_ok());
        assert!(check_requested_version("sdfr-api/1").is_ok());
        assert!(check_requested_version("2").is_err());
        assert!(check_requested_version("sdfr-api/2").is_err());
        assert!(check_requested_version("latest").is_err());
        // Unknown minors are forward-compatible: only the major is
        // guarded, like check_schema.
        assert!(check_requested_version("1.9").is_ok());
        assert!(check_requested_version("sdfr-api/1.42").is_ok());
        assert!(check_requested_version("2.0").is_err());
        assert!(check_requested_version("1.x").is_ok());
        assert!(check_schema("sdfr-api/1").is_ok());
        assert!(check_schema("sdfr-api/1.3").is_ok());
        assert!(check_schema("sdfr-api/2").is_err());
        assert!(check_schema("other/1").is_err());
    }

    #[test]
    fn unit_record_rendering() {
        let exact = UnitRecord {
            workload_kind: WorkloadKind::Sdf,
            index: Some(2),
            file: "a.sdf".into(),
            tier: Some(Some(10)),
            fingerprint: Some(0x4cf),
            cache: Some("hit"),
            pending: false,
            status: UnitStatus::Exact {
                period: Some("5".into()),
            },
            scenarios: None,
            exit: 0,
        };
        assert_eq!(
            exact.to_json_line(),
            "{\"schema\":\"sdfr-api/1\",\"workload_kind\":\"sdf\",\"index\":2,\
             \"file\":\"a.sdf\",\"tier\":10,\
             \"fingerprint\":\"00000000000004cf\",\"cache\":\"hit\",\
             \"status\":\"exact\",\"period\":\"5\",\"exit\":0}"
        );

        let standalone = UnitRecord {
            fingerprint: Some(1),
            ..UnitRecord::standalone(
                "b.sdf",
                UnitStatus::Degraded {
                    bound: "42".into(),
                    method: "serialization",
                },
                0,
            )
        };
        assert_eq!(
            standalone.to_json_line(),
            "{\"schema\":\"sdfr-api/1\",\"workload_kind\":\"sdf\",\"file\":\"b.sdf\",\
             \"fingerprint\":\"0000000000000001\",\"status\":\"degraded\",\
             \"bound\":\"42\",\"method\":\"serialization\",\"exit\":0}"
        );

        let pending = UnitRecord {
            pending: true,
            ..standalone.clone()
        };
        assert!(pending
            .to_json_line()
            .contains("\"pending\":true,\"exit\":0"));

        let error = UnitRecord::standalone(
            "c.sdf",
            UnitStatus::Error {
                message: "no \"good\"".into(),
            },
            3,
        );
        assert_eq!(
            error.to_json_line(),
            "{\"schema\":\"sdfr-api/1\",\"workload_kind\":\"sdf\",\"file\":\"c.sdf\",\
             \"status\":\"error\",\"error\":\"no \\\"good\\\"\",\"exit\":3}"
        );
    }

    #[test]
    fn scenario_records_render_the_stable_sub_object() {
        let record = UnitRecord {
            workload_kind: WorkloadKind::Sadf,
            scenarios: Some(ScenarioSet {
                periods: vec![
                    ("fast".into(), Some("3".into())),
                    ("slow".into(), None),
                ],
                cycle: vec!["s0".into(), "s1".into()],
            }),
            ..UnitRecord::standalone(
                "w.sadf",
                UnitStatus::Exact {
                    period: Some("6".into()),
                },
                0,
            )
        };
        assert_eq!(
            record.to_json_line(),
            "{\"schema\":\"sdfr-api/1\",\"workload_kind\":\"sadf\",\"file\":\"w.sadf\",\
             \"status\":\"exact\",\"period\":\"6\",\
             \"scenarios\":{\"periods\":{\"fast\":\"3\",\"slow\":null},\
             \"cycle\":[\"s0\",\"s1\"]},\"exit\":0}"
        );
    }

    #[test]
    fn status_from_outcome_uses_stable_tokens() {
        let exact = UnitStatus::from_outcome(&AnalysisOutcome::Exact(Some(Rational::from(5))));
        assert_eq!(
            exact,
            UnitStatus::Exact {
                period: Some("5".into())
            }
        );
        let degraded = UnitStatus::from_outcome(&AnalysisOutcome::Degraded {
            exhausted: SdfError::Exhausted {
                resource: sdfr_graph::budget::BudgetResource::Firings,
                spent: 2,
                limit: 1,
            },
            bound: ConservativeBound {
                bound: Rational::from(7),
                method: FallbackMethod::Abstraction,
            },
        });
        assert_eq!(
            degraded,
            UnitStatus::Degraded {
                bound: "7".into(),
                method: "abstraction"
            }
        );
    }

    #[test]
    fn batch_summary_counts_exits() {
        let mut agg = OutcomeAggregate::default();
        agg.record(&AnalysisOutcome::Exact(None));
        agg.record(&AnalysisOutcome::Exact(None));
        agg.record_error();
        let summary = BatchSummary::new(
            agg,
            &[0, 3, 0],
            &[WorkloadKind::Sdf, WorkloadKind::Sadf, WorkloadKind::Sdf],
            RegistryStats::default(),
        );
        assert_eq!(summary.exit, 3);
        assert_eq!(summary.exit_counts, vec![(0, 2), (3, 1)]);
        assert_eq!(summary.kind_counts, vec![("sadf", 1), ("sdf", 2)]);
        let line = summary.to_json_line();
        assert!(line.starts_with("{\"schema\":\"sdfr-api/1\",\"summary\":true,"));
        assert!(line.contains("\"total\":3,\"exact\":2,"), "{line}");
        assert!(line.contains("\"exits\":{\"0\":2,\"3\":1}"), "{line}");
        assert!(
            line.contains("\"kinds\":{\"sadf\":1,\"sdf\":2},\"cache\":{\"hits\":0,"),
            "{line}"
        );
        assert!(line.ends_with("\"exit\":3}"), "{line}");

        // Round-trip + associative merge over mixed-kind parts.
        let back = BatchSummary::from_json_line(&line).unwrap();
        assert_eq!(back.kind_counts, summary.kind_counts);
        assert_eq!(back.to_json_line(), line);
        let merged = BatchSummary::merge(&[summary.clone(), back]);
        assert_eq!(merged.kind_counts, vec![("sadf", 2), ("sdf", 4)]);
        // An older producer's line (no "kinds") still parses.
        let old = line.replace(",\"kinds\":{\"sadf\":1,\"sdf\":2}", "");
        assert!(BatchSummary::from_json_line(&old)
            .unwrap()
            .kind_counts
            .is_empty());
        // A *newer* minor's line — future schema tag, unknown field —
        // also parses: minor bumps are forward-compatible by contract.
        let future = line
            .replace("sdfr-api/1", "sdfr-api/1.9")
            .replace("\"summary\":true,", "\"summary\":true,\"novel\":42,");
        let parsed = BatchSummary::from_json_line(&future).unwrap();
        assert_eq!(parsed.exit_counts, vec![(0, 2), (3, 1)]);
    }

    #[test]
    fn error_body_and_http_statuses() {
        let body = ErrorBody::new("bad-request", "tiers must be integers", EXIT_USAGE);
        assert_eq!(
            body.to_json(),
            "{\"schema\":\"sdfr-api/1\",\"error\":true,\"code\":\"bad-request\",\
             \"message\":\"tiers must be integers\",\"exit\":2}"
        );
        assert_eq!(http_status_for_exit(EXIT_OK), 200);
        assert_eq!(http_status_for_exit(EXIT_INVALID), 422);
        assert_eq!(http_status_for_exit(EXIT_EXHAUSTED), 422);
        assert_eq!(http_status_for_exit(EXIT_USAGE), 400);
        assert_eq!(http_status_for_exit(EXIT_IO), 404);
        assert_eq!(http_status_for_exit(EXIT_PANIC), 500);
    }

    #[test]
    fn csdf_record_rendering() {
        let ok = CsdfRecord {
            file: "w.csdf".into(),
            status: UnitStatus::Exact {
                period: Some("4".into()),
            },
            phase_firings: Some(4),
            hsdf: Some((1, 1, 1)),
            exit: 0,
        };
        assert_eq!(
            ok.to_json_line(),
            "{\"schema\":\"sdfr-api/1\",\"workload_kind\":\"csdf\",\"file\":\"w.csdf\",\
             \"status\":\"exact\",\
             \"period\":\"4\",\"phase_firings\":4,\"hsdf_actors\":1,\
             \"hsdf_channels\":1,\"hsdf_tokens\":1,\"exit\":0}"
        );
        let err = CsdfRecord {
            file: "w.csdf".into(),
            status: UnitStatus::Error {
                message: "inconsistent".into(),
            },
            phase_firings: None,
            hsdf: None,
            exit: 1,
        };
        assert!(err.to_json_line().contains("\"status\":\"error\""));
    }
}

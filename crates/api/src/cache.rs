//! The `sdfr-cache/1` persistent-cache envelope.
//!
//! `sdfr serve --cache-dir` persists completed analysis artifacts into an
//! append-only journal so a restarted server comes up warm. This module is
//! the wire half of that feature: one [`CacheRecord`] per journal line,
//! versioned (`"schema":"sdfr-cache/1"`), checksummed ([`crc32`]), and
//! replayed with torn-tail truncation ([`replay`]). The file half — where
//! the journal lives, when records are appended, how sessions are restored
//! — belongs to the server; keeping the envelope here keeps it testable
//! and keeps `sdfr-api` the single source of truth for every byte `sdfr`
//! writes for later consumption.
//!
//! # Crash safety
//!
//! A record is one JSON line ending in a CRC-32 of everything before the
//! checksum field, written with a single `write(2)` plus the trailing
//! newline. A `kill -9` mid-append leaves at most one torn line at the end
//! of the file; [`replay`] verifies records front to back and stops at the
//! first line that is short, unparsable, or fails its checksum — reporting
//! the byte offset of the last good record so the caller can truncate the
//! tail and keep every intact record. Corruption therefore costs the torn
//! suffix, never the store.
//!
//! # What is cached
//!
//! Only the *headline* throughput artifact — the max-plus eigenvalue (or
//! its budget exhaustion) plus bookkeeping — is persisted, keyed by
//! `(fingerprint, max_firings, max_size)`: exactly the content-addressable
//! session-registry key. The graph content rides along so a restarted
//! server can rebuild the session and deep-verify the fingerprint; budgets
//! carrying deadlines or cancel flags are never content-addressable and
//! never persisted.

use std::fmt::Write as _;

use crate::json::{self, escape_str, Value};

/// The schema tag stamped on every cache-journal record.
pub const CACHE_SCHEMA: &str = "sdfr-cache/1";

/// The cache-schema major version this library speaks.
pub const CACHE_MAJOR: u64 = 1;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`. Bitwise and
/// table-free: the journal appends at human rates, not line rates, so five
/// lines of obviously-correct code beat a 1 KiB lookup table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The budgeted resource recorded in an exhausted outcome. Only the
/// content-addressable resources appear: wall-clock and cancellation
/// budgets bypass the session registry and are never persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedResource {
    /// A firing cap ran out.
    Firings,
    /// A state-size cap ran out.
    Size,
}

impl CachedResource {
    /// The stable wire token (`"firings"` / `"size"`).
    pub fn token(self) -> &'static str {
        match self {
            CachedResource::Firings => "firings",
            CachedResource::Size => "size",
        }
    }

    /// Parses the wire token back.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "firings" => Some(CachedResource::Firings),
            "size" => Some(CachedResource::Size),
            _ => None,
        }
    }
}

/// The persisted headline outcome of one analysis session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedOutcome {
    /// The exact iteration period as a canonical rational `num/den`
    /// (`den > 0`).
    Period {
        /// Numerator (sign-carrying).
        num: i64,
        /// Denominator (always positive).
        den: i64,
    },
    /// No recurrent constraint: the graph is unboundedly fast.
    Unbounded,
    /// The session budget was exhausted; the exhaustion itself is the
    /// cached artifact (retrying could only be more depleted), and the
    /// iteration-free conservative bound is recomputed on demand.
    Exhausted {
        /// Which cap ran out.
        resource: CachedResource,
        /// Units charged when it ran out.
        spent: u64,
        /// The configured cap.
        limit: u64,
    },
}

/// One persistent-cache journal record: the session-registry key, the
/// graph source needed to rebuild (and deep-verify) the session, and the
/// headline artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRecord {
    /// The graph's content fingerprint ([`sdfr_graph::SdfGraph::fingerprint`]).
    pub fingerprint: u64,
    /// The `--max-firings` cap of the session budget (registry key part).
    pub max_firings: Option<u64>,
    /// The `--max-size` cap of the session budget (registry key part).
    pub max_size: Option<u64>,
    /// Display name of the graph source (never opened as a path).
    pub name: String,
    /// The full graph description, re-parsed on restore.
    pub content: String,
    /// The persisted headline outcome.
    pub outcome: CachedOutcome,
    /// Cumulative firings the session had charged when persisted.
    pub spent: u64,
    /// `Σγ` firings of the sequential schedule, when it was resident —
    /// schedule metadata for observability, not restored into the session.
    pub schedule_firings: Option<u64>,
    /// The `sdfr-engine/1` wire encoding of the session's archived engine
    /// state, when one was resident and compact enough to persist. A
    /// restarted server attaches it to the rebuilt session so later
    /// requests resume or fork the checkpointed execution instead of
    /// starting cold. Absent (or `null`) on records written before the
    /// field existed — restores then simply run cold.
    pub engine: Option<String>,
}

impl CacheRecord {
    /// Renders the record as one checksummed JSON line (no trailing
    /// newline). The `"crc"` field is the CRC-32 of every byte before it.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160 + self.content.len());
        let _ = write!(
            out,
            "{{\"schema\":{},\"fingerprint\":\"{:016x}\"",
            escape_str(CACHE_SCHEMA),
            self.fingerprint
        );
        for (key, v) in [
            ("max_firings", self.max_firings),
            ("max_size", self.max_size),
        ] {
            match v {
                Some(n) => {
                    let _ = write!(out, ",\"{key}\":{n}");
                }
                None => {
                    let _ = write!(out, ",\"{key}\":null");
                }
            }
        }
        let _ = write!(
            out,
            ",\"name\":{},\"content\":{}",
            escape_str(&self.name),
            escape_str(&self.content)
        );
        match self.outcome {
            CachedOutcome::Period { num, den } => {
                let _ = write!(
                    out,
                    ",\"outcome\":{{\"kind\":\"period\",\"num\":{num},\"den\":{den}}}"
                );
            }
            CachedOutcome::Unbounded => {
                out.push_str(",\"outcome\":{\"kind\":\"unbounded\"}");
            }
            CachedOutcome::Exhausted {
                resource,
                spent,
                limit,
            } => {
                let _ = write!(
                    out,
                    ",\"outcome\":{{\"kind\":\"exhausted\",\"resource\":\"{}\",\
                     \"spent\":{spent},\"limit\":{limit}}}",
                    resource.token()
                );
            }
        }
        let _ = write!(out, ",\"spent\":{}", self.spent);
        match self.schedule_firings {
            Some(n) => {
                let _ = write!(out, ",\"schedule_firings\":{n}");
            }
            None => out.push_str(",\"schedule_firings\":null"),
        }
        match &self.engine {
            Some(wire) => {
                let _ = write!(out, ",\"engine\":{}", escape_str(wire));
            }
            None => out.push_str(",\"engine\":null"),
        }
        let crc = crc32(out.as_bytes());
        let _ = write!(out, ",\"crc\":\"{crc:08x}\"}}");
        out
    }

    /// Parses and verifies one journal line: checksum first, then schema
    /// major, then shape.
    ///
    /// # Errors
    ///
    /// A human-readable reason; callers treat any error as the corruption
    /// boundary of the journal.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let marker = ",\"crc\":\"";
        let idx = line
            .rfind(marker)
            .ok_or_else(|| "record has no checksum".to_string())?;
        let prefix = &line[..idx];
        let tail = &line[idx + marker.len()..];
        let hex = tail
            .strip_suffix("\"}")
            .ok_or_else(|| "record does not end at its checksum".to_string())?;
        let stored = u32::from_str_radix(hex, 16).map_err(|_| "unreadable checksum".to_string())?;
        let actual = crc32(prefix.as_bytes());
        if stored != actual {
            return Err(format!(
                "checksum mismatch: stored {stored:08x}, computed {actual:08x}"
            ));
        }

        let v = json::parse(line).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "record has no schema".to_string())?;
        check_cache_schema(schema)?;

        let fingerprint = v
            .get("fingerprint")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| "record has no fingerprint".to_string())?;
        let cap = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(value) => value
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("\"{key}\" must be a non-negative integer or null")),
            }
        };
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record has no \"{key}\""))
        };

        let outcome_value = v
            .get("outcome")
            .ok_or_else(|| "record has no outcome".to_string())?;
        let kind = outcome_value
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| "outcome has no kind".to_string())?;
        let int = |obj: &Value, key: &str| -> Result<i64, String> {
            match obj.get(key) {
                Some(Value::Int(i)) => {
                    i64::try_from(*i).map_err(|_| format!("\"{key}\" out of range"))
                }
                _ => Err(format!("outcome has no \"{key}\"")),
            }
        };
        let outcome = match kind {
            "period" => {
                let num = int(outcome_value, "num")?;
                let den = int(outcome_value, "den")?;
                if den <= 0 {
                    return Err("period denominator must be positive".to_string());
                }
                CachedOutcome::Period { num, den }
            }
            "unbounded" => CachedOutcome::Unbounded,
            "exhausted" => {
                let resource = outcome_value
                    .get("resource")
                    .and_then(Value::as_str)
                    .and_then(CachedResource::from_token)
                    .ok_or_else(|| "exhausted outcome has an unknown resource".to_string())?;
                let spent = outcome_value
                    .get("spent")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| "exhausted outcome has no \"spent\"".to_string())?;
                let limit = outcome_value
                    .get("limit")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| "exhausted outcome has no \"limit\"".to_string())?;
                CachedOutcome::Exhausted {
                    resource,
                    spent,
                    limit,
                }
            }
            other => return Err(format!("unknown outcome kind '{other}'")),
        };

        Ok(CacheRecord {
            fingerprint,
            max_firings: cap("max_firings")?,
            max_size: cap("max_size")?,
            name: text("name")?,
            content: text("content")?,
            outcome,
            spent: v
                .get("spent")
                .and_then(Value::as_u64)
                .ok_or_else(|| "record has no \"spent\"".to_string())?,
            schedule_firings: cap("schedule_firings")?,
            engine: match v.get("engine") {
                None | Some(Value::Null) => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"engine\" must be a string or null".to_string())?,
                ),
            },
        })
    }
}

/// Validates a cache-record `"schema"` field: `sdfr-cache/<major>` with a
/// major this library speaks (minor suffixes after `.` are tolerated).
///
/// # Errors
///
/// A message naming the supported schema.
pub fn check_cache_schema(schema: &str) -> Result<(), String> {
    let Some(version) = schema.strip_prefix("sdfr-cache/") else {
        return Err(format!(
            "schema '{schema}' is not an sdfr-cache schema (this build speaks {CACHE_SCHEMA})"
        ));
    };
    let major = version.split('.').next().unwrap_or(version);
    match major.parse::<u64>() {
        Ok(m) if m == CACHE_MAJOR => Ok(()),
        _ => Err(format!(
            "schema '{schema}' has an unsupported major version (this build speaks {CACHE_SCHEMA})"
        )),
    }
}

/// The result of replaying a journal byte-stream: every intact record in
/// order, the byte length of the valid prefix (callers truncate the file
/// to it when shorter than the whole), and how many lines — torn, corrupt
/// or trailing a corrupt one — were dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// The intact records, in append order.
    pub records: Vec<CacheRecord>,
    /// Byte length of the journal prefix covered by `records`.
    pub valid_len: usize,
    /// Number of dropped lines (a torn trailing fragment counts as one).
    pub rejected: u64,
}

/// Replays a journal front to back, stopping at the first torn or corrupt
/// line. Everything after the corruption boundary is dropped — an
/// append-only journal has no way to know whether later bytes landed
/// before or after the failure, so the valid *prefix* is the only safe
/// recovery.
pub fn replay(journal: &[u8]) -> ReplaySummary {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < journal.len() {
        let rest = &journal[offset..];
        let Some(end) = rest.iter().position(|&b| b == b'\n') else {
            break; // torn tail: no newline ever landed
        };
        let parsed = std::str::from_utf8(&rest[..end])
            .ok()
            .and_then(|line| CacheRecord::from_json_line(line).ok());
        match parsed {
            Some(record) => {
                records.push(record);
                offset += end + 1;
            }
            None => break,
        }
    }
    let rejected = if offset < journal.len() {
        // Count the dropped lines; a trailing fragment without a newline
        // is one dropped line too.
        let rest = &journal[offset..];
        let newlines = rest.iter().filter(|&&b| b == b'\n').count() as u64;
        newlines + u64::from(!rest.ends_with(b"\n"))
    } else {
        0
    };
    ReplaySummary {
        records,
        valid_len: offset,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheRecord {
        CacheRecord {
            fingerprint: 0x4cf,
            max_firings: Some(500),
            max_size: None,
            name: "demo.sdf".into(),
            content: "graph demo\nactor a 2\nactor b 3\n".into(),
            outcome: CachedOutcome::Period { num: 5, den: 1 },
            spent: 7,
            schedule_firings: Some(2),
            engine: None,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips() {
        for outcome in [
            CachedOutcome::Period { num: -3, den: 7 },
            CachedOutcome::Unbounded,
            CachedOutcome::Exhausted {
                resource: CachedResource::Firings,
                spent: 11,
                limit: 10,
            },
            CachedOutcome::Exhausted {
                resource: CachedResource::Size,
                spent: 9,
                limit: 8,
            },
        ] {
            let record = CacheRecord {
                outcome,
                ..sample()
            };
            let line = record.to_json_line();
            assert!(line.starts_with("{\"schema\":\"sdfr-cache/1\""), "{line}");
            assert!(!line.contains('\n'));
            let back = CacheRecord::from_json_line(&line).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn engine_field_round_trips_and_tolerates_absence() {
        // A persisted engine wire string survives the round trip.
        let record = CacheRecord {
            engine: Some("sdfr-engine/1|4|3|2,1|0,!,1,1|3;2,1;4,3:1@0.!.2|".into()),
            ..sample()
        };
        let line = record.to_json_line();
        assert_eq!(CacheRecord::from_json_line(&line).unwrap(), record);
        // Pre-engine records (no field at all) still parse: engine is None.
        let line = sample().to_json_line();
        let stripped = line.replace(",\"engine\":null", "");
        let idx = stripped.rfind(",\"crc\":\"").unwrap();
        let crc = crc32(&stripped.as_bytes()[..idx]);
        let legacy = format!("{}{}{crc:08x}\"}}", &stripped[..idx], ",\"crc\":\"");
        let back = CacheRecord::from_json_line(&legacy).unwrap();
        assert_eq!(back, sample());
        assert_eq!(back.engine, None);
    }

    #[test]
    fn any_flipped_byte_fails_the_checksum() {
        let line = sample().to_json_line();
        let bytes = line.as_bytes();
        // Flip every byte of the payload in turn (not the checksum hex
        // itself, where a flip changes what is *claimed*, also caught).
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            if let Ok(s) = String::from_utf8(mutated) {
                if s == line {
                    continue;
                }
                assert!(
                    CacheRecord::from_json_line(&s).is_err(),
                    "flip at {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn schema_guard() {
        assert!(check_cache_schema("sdfr-cache/1").is_ok());
        assert!(check_cache_schema("sdfr-cache/1.4").is_ok());
        assert!(check_cache_schema("sdfr-cache/2").is_err());
        assert!(check_cache_schema("sdfr-api/1").is_err());
        // A well-checksummed record of a future major is still rejected.
        let line = sample()
            .to_json_line()
            .replace("sdfr-cache/1", "sdfr-cache/9");
        let idx = line.rfind(",\"crc\":\"").unwrap();
        let crc = crc32(&line.as_bytes()[..idx]);
        let line = format!("{}{}{crc:08x}\"}}", &line[..idx], ",\"crc\":\"");
        assert!(CacheRecord::from_json_line(&line)
            .unwrap_err()
            .contains("unsupported major"));
    }

    #[test]
    fn replay_keeps_the_valid_prefix_and_truncates_the_torn_tail() {
        let a = sample().to_json_line();
        let b = CacheRecord {
            fingerprint: 0x1000,
            ..sample()
        }
        .to_json_line();
        let whole = format!("{a}\n{b}\n");
        let full = replay(whole.as_bytes());
        assert_eq!(full.records.len(), 2);
        assert_eq!(full.valid_len, whole.len());
        assert_eq!(full.rejected, 0);

        // Tear the second record mid-line: first survives, tail dropped.
        let torn = format!("{a}\n{}", &b[..b.len() / 2]);
        let partial = replay(torn.as_bytes());
        assert_eq!(partial.records.len(), 1);
        assert_eq!(partial.valid_len, a.len() + 1);
        assert_eq!(partial.rejected, 1);

        // Corruption mid-file drops everything after the boundary.
        let corrupt = format!("{a}\nnot json\n{b}\n");
        let recovered = replay(corrupt.as_bytes());
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.valid_len, a.len() + 1);
        assert_eq!(recovered.rejected, 2);

        // An empty journal is a clean cold start.
        let empty = replay(b"");
        assert!(empty.records.is_empty());
        assert_eq!((empty.valid_len, empty.rejected), (0, 0));
    }
}

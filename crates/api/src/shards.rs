//! The `sdfr-shards/1` fleet shard map: consistent hashing of graph
//! fingerprints across N `sdfr serve` processes.
//!
//! A fleet is an ordered peer list (`host:port` per shard, shard id =
//! position). Every party that knows the list — the routing client, every
//! server — derives the **same** ring from it, with no coordination
//! traffic and no RNG:
//!
//! - each shard contributes [`VNODES_PER_SHARD`] virtual nodes; vnode `v`
//!   of shard `s` sits at `mix(RING_DOMAIN + (s << 8 | v))` on a `u64`
//!   ring, where `mix` is the splitmix64 finalizer;
//! - a fingerprint `fp` (already domain-separated FNV-1a, see
//!   `SdfGraph::fingerprint`) lands at `mix(KEY_DOMAIN ^ fp)` and is owned
//!   by the first vnode clockwise from that point (ties broken by shard
//!   id, ring wrap-around included);
//! - the **successor** of `fp` is the next *distinct* shard clockwise
//!   after the owning vnode — the failover target, and the shard a fresh
//!   owner asks for a warm archive.
//!
//! Virtual nodes make ownership near-uniform and, more importantly, make
//! membership changes cheap: removing one shard ([`ShardMap::without`])
//! deletes only that shard's vnodes, so every fingerprint not owned by the
//! removed shard keeps its owner — the remap fraction is bounded by
//! roughly `1/N` (≤ ~2/N with slack; pinned by the `shard_props` suite).
//!
//! Everything here is a pure function of the peer list, so a client and N
//! servers started with the same `--peers` agree on every routing decision
//! without ever talking to each other about placement.

use std::fmt::Write as _;

use crate::json::{self, escape_str, Value};
use crate::EXIT_USAGE;

/// Schema tag of the shard-map wire format and the redirect record.
pub const SHARDS_SCHEMA: &str = "sdfr-shards/1";

/// Virtual nodes per shard. Fixed: changing this re-keys the whole ring,
/// so it is part of the `sdfr-shards/1` contract.
pub const VNODES_PER_SHARD: u32 = 64;

/// Domain tag for ring (vnode) points.
const RING_DOMAIN: u64 = 0x5344_4652_5249_4e47; // "SDFRRING"
/// Domain tag for key (fingerprint) points — distinct from vnodes so a
/// fingerprint can never alias a vnode position by construction.
const KEY_DOMAIN: u64 = 0x5344_4652_4b45_5953; // "SDFRKEYS"

/// The splitmix64 finalizer: a fixed, portable 64-bit mixer with full
/// avalanche. Deterministic across processes, architectures and builds.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The position of shard `shard`'s virtual node `vnode` on the ring.
fn vnode_point(shard: u32, vnode: u32) -> u64 {
    mix(RING_DOMAIN.wrapping_add((u64::from(shard) << 8) | u64::from(vnode)))
}

/// The ring position of a graph fingerprint.
fn key_point(fingerprint: u64) -> u64 {
    mix(KEY_DOMAIN ^ fingerprint)
}

/// A fleet's shard map: the ordered peer list plus the derived ring.
///
/// Shard ids are indices into the peer list and stay stable across
/// [`ShardMap::without`] — a map with a removed member keeps the other
/// shards' ids (and ring points) untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    peers: Vec<String>,
    /// `(point, shard)` sorted ascending; ties (astronomically unlikely
    /// with a 64-bit mixer, but determinism must not hinge on luck) break
    /// toward the lower shard id.
    ring: Vec<(u64, u32)>,
}

impl ShardMap {
    /// Builds the map for an ordered peer list (shard id = index).
    ///
    /// # Errors
    ///
    /// A human-readable message when the list is empty, has more than
    /// `u32::MAX >> 8` members, or contains an empty / whitespace entry
    /// (the caller names the offending position).
    pub fn new(peers: Vec<String>) -> Result<ShardMap, String> {
        if peers.is_empty() {
            return Err("shard map needs at least one peer".into());
        }
        if peers.len() > (u32::MAX >> 8) as usize {
            return Err(format!("shard map of {} peers is too large", peers.len()));
        }
        for (i, peer) in peers.iter().enumerate() {
            if peer.trim().is_empty() {
                return Err(format!("peer #{i} is empty"));
            }
        }
        let mut ring = Vec::with_capacity(peers.len() * VNODES_PER_SHARD as usize);
        for shard in 0..peers.len() as u32 {
            for vnode in 0..VNODES_PER_SHARD {
                ring.push((vnode_point(shard, vnode), shard));
            }
        }
        ring.sort_unstable();
        Ok(ShardMap { peers, ring })
    }

    /// Number of shards in the peer list (including any removed via
    /// [`ShardMap::without`] — ids stay stable; use
    /// [`ShardMap::live_shards`] for the routable count).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when the peer list is empty (never, for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Distinct shards that still own ring points.
    pub fn live_shards(&self) -> usize {
        let mut seen = vec![false; self.peers.len()];
        for &(_, shard) in &self.ring {
            seen[shard as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// The peer address of a shard id.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range — shard ids only come from this map.
    pub fn peer(&self, shard: u32) -> &str {
        &self.peers[shard as usize]
    }

    /// The full peer list, in shard-id order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The shard owning `fingerprint`: the first vnode clockwise from the
    /// fingerprint's ring point.
    pub fn owner(&self, fingerprint: u64) -> u32 {
        let point = key_point(fingerprint);
        let i = self.ring.partition_point(|&(p, _)| p < point);
        self.ring[if i == self.ring.len() { 0 } else { i }].1
    }

    /// The ring successor of `fingerprint`'s owner: the next *distinct*
    /// shard clockwise after the owning vnode. `None` when the ring has
    /// only one live shard. This is both the client's first failover
    /// target and the warm-archive donor for a fresh owner.
    pub fn successor(&self, fingerprint: u64) -> Option<u32> {
        self.route(fingerprint).into_iter().nth(1)
    }

    /// All live shards in clockwise ring order starting at the owner of
    /// `fingerprint` — the failover cascade: try `route[0]`, then
    /// `route[1]`, … Every live shard appears exactly once.
    pub fn route(&self, fingerprint: u64) -> Vec<u32> {
        let point = key_point(fingerprint);
        let start = {
            let i = self.ring.partition_point(|&(p, _)| p < point);
            if i == self.ring.len() {
                0
            } else {
                i
            }
        };
        let mut order = Vec::new();
        for step in 0..self.ring.len() {
            let shard = self.ring[(start + step) % self.ring.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
            }
        }
        order
    }

    /// The map with `shard`'s vnodes removed and everything else —
    /// including the other shards' ids and ring points — untouched. Keys
    /// not owned by `shard` provably keep their owner; keys that were
    /// owned by it move to their ring successor.
    pub fn without(&self, shard: u32) -> ShardMap {
        ShardMap {
            peers: self.peers.clone(),
            ring: self
                .ring
                .iter()
                .copied()
                .filter(|&(_, s)| s != shard)
                .collect(),
        }
    }

    /// Serializes the map as one `sdfr-shards/1` JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"schema\":{},\"vnodes\":{VNODES_PER_SHARD},\"peers\":[",
            escape_str(SHARDS_SCHEMA)
        );
        for (i, p) in self.peers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_str(p));
        }
        out.push_str("]}");
        out
    }

    /// Parses a serialized map and re-derives the ring.
    ///
    /// # Errors
    ///
    /// A human-readable message for JSON syntax errors, a wrong schema or
    /// vnode count (a peer speaking a different ring geometry must not be
    /// silently routed against), or an invalid peer list.
    pub fn from_json(doc: &str) -> Result<ShardMap, String> {
        let v = json::parse(doc).map_err(|e| e.to_string())?;
        match v.get("schema").and_then(Value::as_str) {
            Some(SHARDS_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported shard map schema {other:?}")),
            None => return Err("shard map has no \"schema\" field".into()),
        }
        match v.get("vnodes").and_then(Value::as_u64) {
            Some(n) if n == u64::from(VNODES_PER_SHARD) => {}
            Some(n) => {
                return Err(format!(
                    "shard map uses {n} vnodes, expected {VNODES_PER_SHARD}"
                ))
            }
            None => return Err("shard map has no \"vnodes\" field".into()),
        }
        let peers = v
            .get("peers")
            .and_then(Value::as_arr)
            .ok_or("shard map \"peers\" must be an array")?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or("shard map peers must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        ShardMap::new(peers)
    }
}

/// The 421 body a shard answers with when asked (without the failover
/// marker) for a fingerprint it does not own: it names the owner so the
/// client — or an operator reading logs — sees exactly where the unit
/// should have gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedirectRecord {
    /// The mis-routed graph fingerprint.
    pub fingerprint: u64,
    /// The shard that received the request.
    pub shard: u32,
    /// The shard that owns the fingerprint.
    pub owner: u32,
    /// The owner's peer address.
    pub peer: String,
}

impl RedirectRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"redirect\":true,\"fingerprint\":\"{:016x}\",\
             \"shard\":{},\"owner\":{},\"peer\":{},\"exit\":{}}}",
            escape_str(SHARDS_SCHEMA),
            self.fingerprint,
            self.shard,
            self.owner,
            escape_str(&self.peer),
            EXIT_USAGE
        )
    }

    /// Parses a redirect record, `None` when `doc` is not one.
    pub fn from_json(doc: &str) -> Option<RedirectRecord> {
        let v = json::parse(doc).ok()?;
        if v.get("schema").and_then(Value::as_str) != Some(SHARDS_SCHEMA)
            || v.get("redirect") != Some(&Value::Bool(true))
        {
            return None;
        }
        let fingerprint = u64::from_str_radix(v.get("fingerprint")?.as_str()?, 16).ok()?;
        Some(RedirectRecord {
            fingerprint,
            shard: u32::try_from(v.get("shard")?.as_u64()?).ok()?,
            owner: u32::try_from(v.get("owner")?.as_u64()?).ok()?,
            peer: v.get("peer")?.as_str()?.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> ShardMap {
        ShardMap::new((0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()).unwrap()
    }

    #[test]
    fn construction_validates_peers() {
        assert!(ShardMap::new(vec![]).is_err());
        let err = ShardMap::new(vec!["a:1".into(), "  ".into()]).unwrap_err();
        assert!(err.contains("#1"), "names the offending position: {err}");
        assert_eq!(map(3).len(), 3);
        assert_eq!(map(3).live_shards(), 3);
    }

    #[test]
    fn ownership_is_total_and_deterministic() {
        let m = map(3);
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let owner = m.owner(fp);
            assert!(owner < 3);
            assert_eq!(owner, map(3).owner(fp), "same peers, same ring");
        }
    }

    #[test]
    fn golden_placements_pin_the_ring_across_builds() {
        // These exact placements are the cross-process contract: a client
        // and a server built separately must agree on them. If this test
        // ever fails, the ring geometry changed and `sdfr-shards/1` must
        // be bumped.
        let m = map(3);
        let placements: Vec<u32> = (0u64..8).map(|i| m.owner(mix(i))).collect();
        assert_eq!(placements, vec![2, 2, 1, 1, 1, 0, 1, 0]);
    }

    #[test]
    fn route_covers_every_live_shard_once() {
        let m = map(4);
        for fp in 0u64..32 {
            let route = m.route(fp);
            assert_eq!(route.len(), 4);
            assert_eq!(route[0], m.owner(fp));
            assert_eq!(m.successor(fp), Some(route[1]));
            let mut sorted = route.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
        assert_eq!(map(1).successor(7), None, "single shard has no failover");
    }

    #[test]
    fn without_preserves_foreign_owners() {
        let m = map(4);
        let removed = 2;
        let shrunk = m.without(removed);
        assert_eq!(shrunk.live_shards(), 3);
        for fp in 0u64..256 {
            let before = m.owner(fp);
            let after = shrunk.owner(fp);
            if before != removed {
                assert_eq!(before, after, "fp {fp:#x} moved without cause");
            } else {
                assert_ne!(after, removed);
                assert_eq!(
                    after,
                    m.successor(fp).unwrap(),
                    "orphans go to the successor"
                );
            }
        }
    }

    #[test]
    fn wire_round_trip() {
        let m = map(3);
        let doc = m.to_json();
        assert!(doc.contains("\"schema\":\"sdfr-shards/1\""));
        assert_eq!(ShardMap::from_json(&doc).unwrap(), m);
        assert!(ShardMap::from_json("{}").is_err());
        assert!(
            ShardMap::from_json(&doc.replace(":64,", ":32,")).is_err(),
            "a different vnode count is a different ring"
        );
    }

    #[test]
    fn redirect_round_trip() {
        let r = RedirectRecord {
            fingerprint: 0xdead_beef,
            shard: 2,
            owner: 0,
            peer: "127.0.0.1:9000".into(),
        };
        let doc = r.to_json();
        assert!(doc.contains("\"fingerprint\":\"00000000deadbeef\""));
        assert_eq!(RedirectRecord::from_json(&doc), Some(r));
        assert_eq!(
            RedirectRecord::from_json("{\"schema\":\"sdfr-api/1\"}"),
            None
        );
    }
}

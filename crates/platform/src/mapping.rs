//! Processor binding with static execution orders.
//!
//! Mapping several actors onto one processor removes their concurrency: on
//! the processor they execute in a fixed round-robin *static order*. In SDF
//! this is modelled by a *serialization ring*: homogeneous channels chain
//! the actors in order, and a single "processor token" returns from the
//! last to the first (Sriram & Bhattacharyya). The transformation only adds
//! dependency edges, so it is conservative in the sense of the paper's
//! Prop. 1 — and the mapped model can afterwards be reduced with the
//! abstraction of Sec. 4 when the orders are regular.

use std::collections::HashSet;

use sdfr_graph::repetition::repetition_vector;
use sdfr_graph::{ActorId, SdfError, SdfGraph};

/// A processor binding: one static order of actors per processor.
///
/// Actors absent from every order remain unconstrained (e.g. hardware
/// accelerators with dedicated resources).
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    orders: Vec<Vec<ActorId>>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Binds the given actors, in static execution order, to a new
    /// processor. Orders with fewer than 2 actors impose no constraint but
    /// are accepted (a dedicated processor).
    pub fn processor(&mut self, order: impl IntoIterator<Item = ActorId>) -> &mut Self {
        self.orders.push(order.into_iter().collect());
        self
    }

    /// The static orders, one per processor.
    pub fn orders(&self) -> &[Vec<ActorId>] {
        &self.orders
    }
}

/// Applies a mapping to `g`: every processor's actors are serialized by a
/// ring of homogeneous channels carrying one processor token.
///
/// The per-processor round-robin executes each bound actor once per ring
/// rotation, which is only consistent if the bound actors share their
/// repetition-vector entry — convert multirate graphs to HSDF first (e.g.
/// with the paper's novel conversion) for firing-level orders.
///
/// # Errors
///
/// - [`SdfError::Inconsistent`] if `g` has no repetition vector or bound
///   actors have unequal repetition entries (reported via the ring channel
///   that would break consistency),
/// - [`SdfError::UnknownActor`] for ids not in `g`.
///
/// # Example
///
/// ```
/// use sdfr_graph::SdfGraph;
/// use sdfr_platform::{apply_mapping, Mapping};
///
/// let mut b = SdfGraph::builder("app");
/// let x = b.actor("x", 2);
/// let y = b.actor("y", 3);
/// b.channel(x, y, 1, 1, 0)?;
/// b.channel(y, x, 1, 1, 2)?;
/// let g = b.build()?;
///
/// let mut m = Mapping::new();
/// m.processor([x, y]); // share one CPU, x before y
/// let mapped = apply_mapping(&g, &m)?;
/// assert_eq!(mapped.num_channels(), g.num_channels() + 2); // the ring
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn apply_mapping(g: &SdfGraph, mapping: &Mapping) -> Result<SdfGraph, SdfError> {
    let gamma = repetition_vector(g)?;
    // Validate ids and repetition equality upfront for a clean error.
    let mut seen = HashSet::new();
    for order in mapping.orders() {
        for &a in order {
            if a.index() >= g.num_actors() {
                return Err(SdfError::UnknownActor {
                    actor: a,
                    num_actors: g.num_actors(),
                });
            }
            assert!(seen.insert(a), "actor {a} bound to more than one processor");
        }
        if let Some((&first, rest)) = order.split_first() {
            for &a in rest {
                if gamma.get(a) != gamma.get(first) {
                    // The ring would violate the balance equations.
                    return Err(SdfError::Inconsistent {
                        channel: sdfr_graph::ChannelId::from_index(g.num_channels()),
                    });
                }
            }
        }
    }

    let mut b = SdfGraph::builder(format!("{}^mapped", g.name()));
    let ids: Vec<ActorId> = g
        .actors()
        .map(|(_, a)| b.actor(a.name().to_string(), a.execution_time()))
        .collect();
    for (_, c) in g.channels() {
        b.channel(
            ids[c.source().index()],
            ids[c.target().index()],
            c.production(),
            c.consumption(),
            c.initial_tokens(),
        )
        .expect("copying a valid channel");
    }
    for order in mapping.orders() {
        if order.len() < 2 {
            continue;
        }
        for pair in order.windows(2) {
            b.channel(ids[pair[0].index()], ids[pair[1].index()], 1, 1, 0)
                .expect("validated ids");
        }
        b.channel(
            ids[order[order.len() - 1].index()],
            ids[order[0].index()],
            1,
            1,
            1,
        )
        .expect("validated ids");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;
    use sdfr_maxplus::Rational;

    /// Two independent self-looped stages.
    fn two_stage() -> (SdfGraph, ActorId, ActorId) {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, x, 1, 1, 1).unwrap();
        b.channel(y, y, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        (g, x, y)
    }

    #[test]
    fn sharing_a_processor_serializes() {
        let (g, x, y) = two_stage();
        // Unmapped: both loops run in parallel; period max(2, 3) = 3.
        assert_eq!(throughput(&g).unwrap().period(), Some(Rational::from(3)));
        let mut m = Mapping::new();
        m.processor([x, y]);
        let mapped = apply_mapping(&g, &m).unwrap();
        // Shared CPU: x then y per rotation; period 2 + 3 = 5.
        assert_eq!(
            throughput(&mapped).unwrap().period(),
            Some(Rational::from(5))
        );
    }

    #[test]
    fn dedicated_processors_change_nothing() {
        let (g, x, y) = two_stage();
        let mut m = Mapping::new();
        m.processor([x]).processor([y]);
        let mapped = apply_mapping(&g, &m).unwrap();
        assert_eq!(mapped.num_channels(), g.num_channels());
        assert_eq!(
            throughput(&mapped).unwrap().period(),
            throughput(&g).unwrap().period()
        );
    }

    #[test]
    fn mapping_is_conservative() {
        // Mapping never speeds a graph up.
        let mut b = SdfGraph::builder("chain");
        let s = b.actor("s", 1);
        let t = b.actor("t", 4);
        let u = b.actor("u", 2);
        b.channel(s, t, 1, 1, 0).unwrap();
        b.channel(t, u, 1, 1, 0).unwrap();
        b.channel(u, s, 1, 1, 2).unwrap();
        let g = b.build().unwrap();
        let unmapped = throughput(&g).unwrap().period().unwrap();
        let mut m = Mapping::new();
        m.processor([s, u]);
        let mapped = apply_mapping(&g, &m).unwrap();
        let mapped_period = throughput(&mapped).unwrap().period().unwrap();
        assert!(mapped_period >= unmapped);
    }

    #[test]
    fn order_matters() {
        // Scheduling the consumer before the producer needs a pipelining
        // token on the data channel; without one the backward order
        // deadlocks, with one it runs at the same rate but higher latency.
        let build = |tokens: u64| {
            let mut b = SdfGraph::builder("pc");
            let p = b.actor("p", 2);
            let c = b.actor("c", 3);
            b.channel(p, c, 1, 1, tokens).unwrap();
            (b.build().unwrap(), p, c)
        };
        let (g0, p0, c0) = build(0);
        let mut backward = Mapping::new();
        backward.processor([c0, p0]);
        let dead = apply_mapping(&g0, &backward).unwrap();
        assert!(matches!(throughput(&dead), Err(SdfError::Deadlock { .. })));

        let (g1, p1, c1) = build(1);
        let mut forward = Mapping::new();
        forward.processor([p1, c1]);
        let mut backward = Mapping::new();
        backward.processor([c1, p1]);
        let f = apply_mapping(&g1, &forward).unwrap();
        let bwd = apply_mapping(&g1, &backward).unwrap();
        let pf = throughput(&f).unwrap().period().unwrap();
        let pb = throughput(&bwd).unwrap().period().unwrap();
        // Both serialize to 2 + 3 = 5 per rotation.
        assert_eq!(pf, pb);
        // The backward order delays the iteration's completion.
        use sdfr_analysis::latency::iteration_makespan;
        assert!(iteration_makespan(&bwd).unwrap() >= iteration_makespan(&f).unwrap());
    }

    #[test]
    fn rejects_unknown_and_duplicate_actors() {
        let (g, x, _) = two_stage();
        let mut m = Mapping::new();
        m.processor([ActorId::from_index(99)]);
        assert!(matches!(
            apply_mapping(&g, &m),
            Err(SdfError::UnknownActor { .. })
        ));
        let mut m = Mapping::new();
        m.processor([x]).processor([x]);
        let result = std::panic::catch_unwind(|| apply_mapping(&g, &m));
        assert!(result.is_err(), "duplicate binding must panic");
    }

    #[test]
    fn rejects_unequal_repetition_entries() {
        let mut b = SdfGraph::builder("mr");
        let x = b.actor("x", 1);
        let y = b.actor("y", 1);
        b.channel(x, y, 2, 1, 0).unwrap(); // γ = (1, 2)
        let g = b.build().unwrap();
        let mut m = Mapping::new();
        m.processor([x, y]);
        assert!(matches!(
            apply_mapping(&g, &m),
            Err(SdfError::Inconsistent { .. })
        ));
    }

    #[test]
    fn mapped_graph_can_be_abstracted() {
        // The motivating pipeline: map a regular graph, then reduce it.
        let mut b = SdfGraph::builder("reg");
        let a1 = b.actor("A1", 2);
        let a2 = b.actor("A2", 2);
        let a3 = b.actor("A3", 2);
        b.channel(a1, a2, 1, 1, 0).unwrap();
        b.channel(a2, a3, 1, 1, 0).unwrap();
        b.channel(a3, a1, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let mut m = Mapping::new();
        m.processor([a1, a2, a3]);
        let mapped = apply_mapping(&g, &m).unwrap();
        let abs = sdfr_core::auto::auto_abstraction(&mapped).unwrap();
        assert_eq!(
            sdfr_core::conservativity::verify_abstraction(&mapped, &abs).unwrap(),
            Ok(())
        );
        let bound = sdfr_core::conservativity::conservative_period_bound(&mapped, &abs)
            .unwrap()
            .unwrap();
        let actual = throughput(&mapped).unwrap().period().unwrap();
        assert!(actual <= bound);
    }
}

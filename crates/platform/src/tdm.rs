//! Conservative TDM arbitration abstraction.
//!
//! On a processor shared by time-division multiplexing, an actor owns a
//! *slot* of `slot` time units out of a *wheel* of `wheel` units. The
//! worst-case response time of a firing with execution time `T` is reached
//! when the firing becomes ready just after its slot ends: every full slot
//! of work then pays one full wheel rotation. Replacing execution times by
//! these response times yields a conservative SDF model of the shared
//! platform (Bekooij et al., SCOPES'04) — conservative exactly in the sense
//! of the paper's Prop. 1, since times only increase.

use sdfr_graph::{ActorId, SdfError, SdfGraph, Time};

/// A TDM allocation: `slot` time units out of every `wheel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdmSlot {
    /// Slot length owned by the actor (`1 ≤ slot ≤ wheel`).
    pub slot: Time,
    /// Wheel (frame) length of the arbiter.
    pub wheel: Time,
}

impl TdmSlot {
    /// Creates an allocation.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ slot ≤ wheel`.
    pub fn new(slot: Time, wheel: Time) -> Self {
        assert!(slot >= 1 && slot <= wheel, "require 1 <= slot <= wheel");
        TdmSlot { slot, wheel }
    }
}

/// The worst-case response time of a firing of `execution_time` under the
/// allocation: the work is served in `slot`-sized chunks, each chunk
/// possibly preceded by a full foreign share `wheel − slot`.
///
/// `R = T + ceil(T / slot) · (wheel − slot)`; a full wheel (dedicated
/// resource) gives `R = T`, and `R(0) = 0`.
///
/// # Example
///
/// ```
/// use sdfr_platform::{tdm_response_time, TdmSlot};
///
/// // 2 of every 10 time units: 5 time units of work need 3 visits.
/// assert_eq!(tdm_response_time(5, TdmSlot::new(2, 10)), 5 + 3 * 8);
/// // A dedicated resource adds nothing.
/// assert_eq!(tdm_response_time(5, TdmSlot::new(10, 10)), 5);
/// ```
pub fn tdm_response_time(execution_time: Time, slot: TdmSlot) -> Time {
    debug_assert!(execution_time >= 0);
    let chunks = execution_time.div_euclid(slot.slot)
        + Time::from(execution_time.rem_euclid(slot.slot) != 0);
    execution_time + chunks * (slot.wheel - slot.slot)
}

/// Replaces the execution time of every listed actor by its worst-case TDM
/// response time; other actors are untouched.
///
/// # Errors
///
/// Returns [`SdfError::UnknownActor`] for ids not in `g`.
///
/// # Example
///
/// ```
/// use sdfr_graph::SdfGraph;
/// use sdfr_platform::{apply_tdm, TdmSlot};
///
/// let mut b = SdfGraph::builder("g");
/// let x = b.actor("x", 6);
/// b.channel(x, x, 1, 1, 1)?;
/// let g = b.build()?;
/// let shared = apply_tdm(&g, &[(x, TdmSlot::new(3, 12))])?;
/// let xs = shared.actor_by_name("x").unwrap();
/// assert_eq!(shared.actor(xs).execution_time(), 6 + 2 * 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn apply_tdm(g: &SdfGraph, slots: &[(ActorId, TdmSlot)]) -> Result<SdfGraph, SdfError> {
    for &(a, _) in slots {
        if a.index() >= g.num_actors() {
            return Err(SdfError::UnknownActor {
                actor: a,
                num_actors: g.num_actors(),
            });
        }
    }
    let mut b = SdfGraph::builder(format!("{}^tdm", g.name()));
    let ids: Vec<ActorId> = g
        .actors()
        .map(|(aid, a)| {
            let time = slots
                .iter()
                .find(|(who, _)| *who == aid)
                .map_or(a.execution_time(), |(_, s)| {
                    tdm_response_time(a.execution_time(), *s)
                });
            b.actor(a.name().to_string(), time)
        })
        .collect();
    for (_, c) in g.channels() {
        b.channel(
            ids[c.source().index()],
            ids[c.target().index()],
            c.production(),
            c.consumption(),
            c.initial_tokens(),
        )
        .expect("copying a valid channel");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;

    #[test]
    fn response_time_formula() {
        let s = TdmSlot::new(2, 10);
        assert_eq!(tdm_response_time(0, s), 0);
        assert_eq!(tdm_response_time(1, s), 1 + 8);
        assert_eq!(tdm_response_time(2, s), 2 + 8);
        assert_eq!(tdm_response_time(3, s), 3 + 16);
        assert_eq!(tdm_response_time(4, s), 4 + 16);
        assert_eq!(tdm_response_time(5, s), 5 + 24);
    }

    #[test]
    fn response_is_monotone_in_slot() {
        for t in [1, 5, 17] {
            let mut prev = Time::MAX;
            for slot in 1..=10 {
                let r = tdm_response_time(t, TdmSlot::new(slot, 10));
                assert!(r <= prev, "bigger slots never hurt");
                prev = r;
            }
            assert_eq!(tdm_response_time(t, TdmSlot::new(10, 10)), t);
        }
    }

    #[test]
    #[should_panic(expected = "1 <= slot <= wheel")]
    fn invalid_slot_rejected() {
        let _ = TdmSlot::new(11, 10);
    }

    #[test]
    fn tdm_slows_the_graph_conservatively() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 4);
        let y = b.actor("y", 4);
        b.channel(x, y, 1, 1, 0).unwrap();
        b.channel(y, x, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let base = throughput(&g).unwrap().period().unwrap();
        let shared = apply_tdm(&g, &[(x, TdmSlot::new(2, 6)), (y, TdmSlot::new(3, 6))]).unwrap();
        let slowed = throughput(&shared).unwrap().period().unwrap();
        assert!(slowed >= base);
        // x: 4 + 2·4 = 12; y: 4 + 2·3 = 10; cycle 22.
        assert_eq!(slowed, sdfr_maxplus::Rational::from(22));
    }

    #[test]
    fn unknown_actor_rejected() {
        let mut b = SdfGraph::builder("g");
        b.actor("x", 1);
        let g = b.build().unwrap();
        assert!(apply_tdm(&g, &[(ActorId::from_index(3), TdmSlot::new(1, 2))]).is_err());
    }

    #[test]
    fn unlisted_actors_unchanged() {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 4);
        let y = b.actor("y", 7);
        b.channel(x, y, 1, 1, 0).unwrap();
        let g = b.build().unwrap();
        let shared = apply_tdm(&g, &[(x, TdmSlot::new(1, 3))]).unwrap();
        let ys = shared.actor_by_name("y").unwrap();
        assert_eq!(shared.actor(ys).execution_time(), 7);
    }
}

//! Network-on-chip connection insertion.
//!
//! When producer and consumer live on different tiles, their channel runs
//! over the NoC through communication assists (CAs) — the structure of the
//! paper's Fig. 5 model. This transformation replaces a channel by a
//! `send CA → transport → receive CA` pipeline with configurable
//! per-token latencies, each stage serialized by a self-loop (one token in
//! flight per stage, the conservative single-buffer assumption).

use sdfr_graph::{ChannelId, SdfError, SdfGraph, Time};

/// Per-stage latencies of an inserted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionLatency {
    /// Send-side communication assist time per token batch.
    pub send: Time,
    /// Transport (router/link) time per token batch.
    pub transport: Time,
    /// Receive-side communication assist time per token batch.
    pub receive: Time,
}

/// Replaces channel `target` of `g` by a three-stage NoC connection.
///
/// The producing actor's tokens pass through `snd_<i>`, `lnk_<i>` and
/// `rcv_<i>` actors (where `<i>` is the channel index), each moving one
/// production batch (`p` tokens) per firing and serialized by a one-token
/// self-loop. The original initial tokens are placed on the final segment,
/// so they are available to the consumer immediately, exactly like before
/// the split.
///
/// # Errors
///
/// Returns [`SdfError::UnknownActor`]-free variants only; an out-of-range
/// `target` is a panic (caller contract), graph rebuild errors propagate.
///
/// # Panics
///
/// Panics if `target` is not a channel of `g` or latencies are negative.
pub fn insert_connection(
    g: &SdfGraph,
    target: ChannelId,
    latency: ConnectionLatency,
) -> Result<SdfGraph, SdfError> {
    assert!(
        target.index() < g.num_channels(),
        "channel {target} not in graph"
    );
    assert!(
        latency.send >= 0 && latency.transport >= 0 && latency.receive >= 0,
        "latencies must be non-negative"
    );
    let mut b = SdfGraph::builder(format!("{}^noc", g.name()));
    let ids: Vec<_> = g
        .actors()
        .map(|(_, a)| b.actor(a.name().to_string(), a.execution_time()))
        .collect();
    for (cid, c) in g.channels() {
        if cid != target {
            b.channel(
                ids[c.source().index()],
                ids[c.target().index()],
                c.production(),
                c.consumption(),
                c.initial_tokens(),
            )
            .expect("copying a valid channel");
            continue;
        }
        let p = c.production();
        let i = cid.index();
        let snd = b.actor(format!("snd_{i}"), latency.send);
        let lnk = b.actor(format!("lnk_{i}"), latency.transport);
        let rcv = b.actor(format!("rcv_{i}"), latency.receive);
        // Producer batch -> CA -> link -> CA -> consumer; every stage
        // forwards one batch of p tokens per firing.
        b.channel(ids[c.source().index()], snd, p, p, 0)
            .expect("valid");
        b.channel(snd, lnk, p, p, 0).expect("valid");
        b.channel(lnk, rcv, p, p, 0).expect("valid");
        b.channel(
            rcv,
            ids[c.target().index()],
            p,
            c.consumption(),
            c.initial_tokens(),
        )
        .expect("valid");
        for stage in [snd, lnk, rcv] {
            b.channel(stage, stage, 1, 1, 1).expect("valid");
        }
    }
    b.build()
}

impl ConnectionLatency {
    /// A symmetric connection: both CAs take `ca`, the transport `link`.
    ///
    /// # Panics
    ///
    /// Panics if a latency is negative.
    pub fn symmetric(ca: Time, link: Time) -> Self {
        assert!(ca >= 0 && link >= 0, "latencies must be non-negative");
        ConnectionLatency {
            send: ca,
            transport: link,
            receive: ca,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfr_analysis::throughput::throughput;
    use sdfr_graph::ChannelId;
    use sdfr_maxplus::Rational;

    fn producer_consumer() -> SdfGraph {
        let mut b = SdfGraph::builder("pc");
        let p = b.actor("p", 2);
        let c = b.actor("c", 3);
        b.channel(p, c, 1, 1, 0).unwrap();
        b.channel(c, p, 1, 1, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn structure_of_inserted_connection() {
        let g = producer_consumer();
        let noc = insert_connection(
            &g,
            ChannelId::from_index(0),
            ConnectionLatency::symmetric(1, 4),
        )
        .unwrap();
        assert_eq!(noc.num_actors(), g.num_actors() + 3);
        // Original 2 channels − 1 replaced + 4 segments + 3 self-loops.
        assert_eq!(noc.num_channels(), g.num_channels() - 1 + 4 + 3);
        assert!(noc.actor_by_name("snd_0").is_some());
        assert!(noc.actor_by_name("lnk_0").is_some());
        assert!(noc.actor_by_name("rcv_0").is_some());
    }

    #[test]
    fn zero_latency_connection_preserves_period() {
        let g = producer_consumer();
        let base = throughput(&g).unwrap().period().unwrap();
        let noc = insert_connection(
            &g,
            ChannelId::from_index(0),
            ConnectionLatency::symmetric(0, 0),
        )
        .unwrap();
        assert_eq!(throughput(&noc).unwrap().period().unwrap(), base);
    }

    #[test]
    fn connection_latency_is_conservative() {
        let g = producer_consumer();
        let base = throughput(&g).unwrap().period().unwrap();
        let noc = insert_connection(
            &g,
            ChannelId::from_index(0),
            ConnectionLatency::symmetric(1, 5),
        )
        .unwrap();
        let slowed = throughput(&noc).unwrap().period().unwrap();
        assert!(slowed >= base);
        // Cycle p -> snd -> lnk -> rcv -> c -> p: (2+1+5+1+3)/2 tokens = 6.
        assert_eq!(slowed, Rational::from(6));
    }

    #[test]
    fn initial_tokens_stay_available() {
        // Tokens on the replaced channel must remain consumable at t = 0.
        let mut b = SdfGraph::builder("g");
        let p = b.actor("p", 5);
        let c = b.actor("c", 1);
        let ch = b.channel(p, c, 1, 1, 3).unwrap();
        b.channel(c, c, 1, 1, 1).unwrap();
        let g = b.build().unwrap();
        let noc = insert_connection(&g, ch, ConnectionLatency::symmetric(2, 2)).unwrap();
        // c can fire immediately using the relocated tokens.
        let trace = sdfr_graph::execution::simulate(
            &noc,
            &sdfr_graph::execution::SimulationOptions::iterations(1).with_firings(),
        )
        .unwrap();
        let c_id = noc.actor_by_name("c").unwrap();
        let firings = trace.firings.unwrap();
        assert_eq!(firings[c_id.index()][0].0, 0);
    }

    #[test]
    fn multirate_batches_preserved() {
        let mut b = SdfGraph::builder("g");
        let p = b.actor("p", 1);
        let c = b.actor("c", 1);
        let ch = b.channel(p, c, 3, 2, 0).unwrap();
        b.channel(c, p, 2, 3, 6).unwrap();
        let g = b.build().unwrap();
        let gamma0 = sdfr_graph::repetition::repetition_vector(&g).unwrap();
        let noc = insert_connection(&g, ch, ConnectionLatency::symmetric(1, 1)).unwrap();
        let gamma = sdfr_graph::repetition::repetition_vector(&noc).unwrap();
        // Stage actors fire once per producer firing.
        let p_id = noc.actor_by_name("p").unwrap();
        let snd = noc.actor_by_name("snd_0").unwrap();
        assert_eq!(gamma[snd], gamma[p_id]);
        assert_eq!(gamma[p_id], gamma0[g.actor_by_name("p").unwrap()]);
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn bad_channel_rejected() {
        let g = producer_consumer();
        let _ = insert_connection(
            &g,
            ChannelId::from_index(9),
            ConnectionLatency::symmetric(0, 0),
        );
    }
}

//! MPSoC platform modelling for SDF timing analysis.
//!
//! The paper's reduction techniques were motivated by worst-case timing
//! analysis of multiprocessor systems-on-chip, where the application *and*
//! the platform are modelled as one SDF graph (Stuijk et al., DSD'05;
//! Poplavko et al., DSD'07; Bekooij et al., SCOPES'04). This crate provides
//! the standard platform-to-SDF transformations:
//!
//! - [`mapping`] — bind actors to processors with a static execution order
//!   (serialization rings),
//! - [`tdm`] — conservative TDM (time-division multiplexing) arbitration
//!   abstraction via worst-case response-time inflation,
//! - [`noc`] — network-on-chip connection insertion (the communication
//!   assists and transport delay of the paper's Fig. 5 model).
//!
//! All three transformations only *add* constraints or *increase* execution
//! times, so by the paper's Prop. 1 the analysed throughput of the mapped
//! model is a conservative bound for any refinement of the platform.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mapping;
pub mod noc;
pub mod tdm;

pub use mapping::{apply_mapping, Mapping};
pub use noc::insert_connection;
pub use tdm::{apply_tdm, tdm_response_time, TdmSlot};

//! Reading and writing cyclo-static dataflow graphs.
//!
//! The text format mirrors the SDF one with comma-separated phase lists:
//!
//! ```text
//! csdf <name>
//! actor <name> <t0,t1,...>
//! channel <src> <dst> <p0,p1,...> <c0,c1,...> <initial-tokens>
//! ```
//!
//! The XML form follows SDF3's `csdf` type: rates and execution times are
//! comma-separated phase lists in the same element positions as for plain
//! SDF.

use std::collections::HashMap;

use sdfr_csdf::{CsdfActorId, CsdfGraph};

use crate::IoError;

/// Serializes a CSDF graph to the text format.
pub fn to_text(g: &CsdfGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("csdf {}\n", g.name()));
    for (_, a) in g.actors() {
        let times: Vec<String> = (0..a.num_phases())
            .map(|p| a.phase_time(p).to_string())
            .collect();
        out.push_str(&format!("actor {} {}\n", a.name(), times.join(",")));
    }
    for (_, c) in g.channels() {
        let prod: Vec<String> = (0..g.actor(c.source()).num_phases())
            .map(|p| c.production(p).to_string())
            .collect();
        let cons: Vec<String> = (0..g.actor(c.target()).num_phases())
            .map(|p| c.consumption(p).to_string())
            .collect();
        out.push_str(&format!(
            "channel {} {} {} {} {}\n",
            g.actor(c.source()).name(),
            g.actor(c.target()).name(),
            prod.join(","),
            cons.join(","),
            c.initial_tokens()
        ));
    }
    out
}

/// Parses a CSDF graph from the text format.
///
/// # Errors
///
/// - [`IoError::Syntax`] on malformed lines,
/// - [`IoError::UnknownActorName`] for dangling references,
/// - [`IoError::Graph`] for SDF-level constraint violations.
pub fn from_text(input: &str) -> Result<CsdfGraph, IoError> {
    let mut name: Option<String> = None;
    let mut actor_decls: Vec<(String, Vec<i64>)> = Vec::new();
    // (line, src, dst, production pattern, consumption pattern, tokens)
    type RawChannel = (usize, String, String, Vec<u64>, Vec<u64>, u64);
    let mut channels: Vec<RawChannel> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "csdf" => {
                if rest.is_empty() {
                    return Err(syntax(lineno, "csdf requires a name"));
                }
                if name.is_some() {
                    return Err(syntax(lineno, "duplicate csdf statement"));
                }
                name = Some(rest.to_string());
            }
            "actor" => {
                let mut parts = rest.split_whitespace();
                let aname = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "actor requires a name"))?;
                let times = parse_list::<i64>(
                    parts
                        .next()
                        .ok_or_else(|| syntax(lineno, "actor requires phase times"))?,
                    lineno,
                )?;
                if parts.next().is_some() {
                    return Err(syntax(lineno, "trailing tokens after actor"));
                }
                actor_decls.push((aname.to_string(), times));
            }
            "channel" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 5 {
                    return Err(syntax(
                        lineno,
                        "channel requires: src dst prod-list cons-list tokens",
                    ));
                }
                let prod = parse_list::<u64>(parts[2], lineno)?;
                let cons = parse_list::<u64>(parts[3], lineno)?;
                let tokens: u64 = parts[4]
                    .parse()
                    .map_err(|_| syntax(lineno, "tokens must be an integer"))?;
                channels.push((
                    lineno,
                    parts[0].to_string(),
                    parts[1].to_string(),
                    prod,
                    cons,
                    tokens,
                ));
            }
            other => return Err(syntax(lineno, &format!("unknown keyword '{other}'"))),
        }
    }

    let mut b = CsdfGraph::builder(name.ok_or_else(|| syntax(1, "missing csdf statement"))?);
    let mut ids: HashMap<String, CsdfActorId> = HashMap::new();
    let mut phases: HashMap<String, usize> = HashMap::new();
    for (aname, times) in actor_decls {
        phases.insert(aname.clone(), times.len());
        let id = b.actor(aname.clone(), times);
        ids.insert(aname, id);
    }
    for (lineno, src, dst, prod, cons, tokens) in channels {
        let s = *ids
            .get(&src)
            .ok_or_else(|| IoError::UnknownActorName { name: src.clone() })?;
        let t = *ids
            .get(&dst)
            .ok_or_else(|| IoError::UnknownActorName { name: dst.clone() })?;
        // Pattern length mismatches are builder panics; report them as
        // syntax errors instead.
        let (expect_s, expect_t) = (phases[&src], phases[&dst]);
        if prod.len() != expect_s || cons.len() != expect_t {
            return Err(syntax(
                lineno,
                &format!(
                    "pattern lengths ({}, {}) do not match phase counts ({expect_s}, {expect_t})",
                    prod.len(),
                    cons.len()
                ),
            ));
        }
        b.channel(s, t, prod, cons, tokens)?;
    }
    Ok(b.build()?)
}

fn parse_list<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<Vec<T>, IoError> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<T>()
                .map_err(|_| syntax(lineno, &format!("'{p}' is not a number")))
        })
        .collect()
}

fn syntax(line: usize, message: &str) -> IoError {
    IoError::Syntax {
        line,
        message: message.to_string(),
    }
}

/// Serializes a CSDF graph to the SDF3 `csdf` XML form (comma-separated
/// phase lists in rate and time attributes).
pub fn to_xml(g: &CsdfGraph) -> String {
    use std::fmt::Write as _;
    let esc = crate::xml::escape;
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(out, r#"<sdf3 type="csdf" version="1.0">"#);
    let _ = writeln!(out, r#"  <applicationGraph name="{}">"#, esc(g.name()));
    let _ = writeln!(out, r#"    <csdf name="{}" type="G">"#, esc(g.name()));
    for (aid, a) in g.actors() {
        let _ = writeln!(
            out,
            r#"      <actor name="{}" type="{}">"#,
            esc(a.name()),
            esc(a.name())
        );
        for (i, &cid) in g.outgoing(aid).iter().enumerate() {
            let rates: Vec<String> = (0..a.num_phases())
                .map(|p| g.channel(cid).production(p).to_string())
                .collect();
            let _ = writeln!(
                out,
                r#"        <port name="out{}" type="out" rate="{}"/>"#,
                i,
                rates.join(",")
            );
        }
        for (i, &cid) in g.incoming(aid).iter().enumerate() {
            let rates: Vec<String> = (0..a.num_phases())
                .map(|p| g.channel(cid).consumption(p).to_string())
                .collect();
            let _ = writeln!(
                out,
                r#"        <port name="in{}" type="in" rate="{}"/>"#,
                i,
                rates.join(",")
            );
        }
        let _ = writeln!(out, "      </actor>");
    }
    for (cid, c) in g.channels() {
        let src_port = g
            .outgoing(c.source())
            .iter()
            .position(|&x| x == cid)
            .expect("channel is in its source's outgoing list");
        let dst_port = g
            .incoming(c.target())
            .iter()
            .position(|&x| x == cid)
            .expect("channel is in its target's incoming list");
        let tokens = if c.initial_tokens() > 0 {
            format!(r#" initialTokens="{}""#, c.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            r#"      <channel name="ch{}" srcActor="{}" srcPort="out{}" dstActor="{}" dstPort="in{}"{}/>"#,
            cid.index(),
            esc(g.actor(c.source()).name()),
            src_port,
            esc(g.actor(c.target()).name()),
            dst_port,
            tokens
        );
    }
    let _ = writeln!(out, "    </csdf>");
    let _ = writeln!(out, "    <csdfProperties>");
    for (_, a) in g.actors() {
        let times: Vec<String> = (0..a.num_phases())
            .map(|p| a.phase_time(p).to_string())
            .collect();
        let _ = writeln!(out, r#"      <actorProperties actor="{}">"#, esc(a.name()));
        let _ = writeln!(out, r#"        <processor type="p0" default="true">"#);
        let _ = writeln!(
            out,
            r#"          <executionTime time="{}"/>"#,
            times.join(",")
        );
        let _ = writeln!(out, "        </processor>");
        let _ = writeln!(out, "      </actorProperties>");
    }
    let _ = writeln!(out, "    </csdfProperties>");
    let _ = writeln!(out, "  </applicationGraph>");
    let _ = writeln!(out, "</sdf3>");
    out
}

/// Parses a CSDF graph from the SDF3 `csdf` XML form.
///
/// # Errors
///
/// As [`from_text`], plus XML syntax errors.
pub fn from_xml(input: &str) -> Result<CsdfGraph, IoError> {
    use crate::xml::{require, tokenize, Event};
    let events = tokenize(input)?;

    let mut graph_name: Option<String> = None;
    let mut actors: Vec<String> = Vec::new();
    let mut actor_index: HashMap<String, usize> = HashMap::new();
    let mut ports: Vec<HashMap<String, Vec<u64>>> = Vec::new();
    let mut times: HashMap<String, Vec<i64>> = HashMap::new();
    struct Raw {
        line: usize,
        src: String,
        src_port: String,
        dst: String,
        dst_port: String,
        tokens: u64,
    }
    let mut channels: Vec<Raw> = Vec::new();
    let mut current_actor: Option<usize> = None;
    let mut props_actor: Option<String> = None;

    for ev in &events {
        match ev {
            Event::Open { name, attrs, line } | Event::Empty { name, attrs, line } => {
                let is_empty = matches!(ev, Event::Empty { .. });
                match name.as_str() {
                    "applicationGraph" | "csdf" if graph_name.is_none() => {
                        graph_name = attrs.get("name").cloned();
                    }
                    "actor" => {
                        let aname = require(attrs, "name", *line)?;
                        let idx = actors.len();
                        actor_index.insert(aname.clone(), idx);
                        actors.push(aname);
                        ports.push(HashMap::new());
                        if !is_empty {
                            current_actor = Some(idx);
                        }
                    }
                    "port" => {
                        let idx = current_actor
                            .ok_or_else(|| syntax(*line, "<port> outside of an <actor>"))?;
                        let pname = require(attrs, "name", *line)?;
                        let rates = parse_list::<u64>(&require(attrs, "rate", *line)?, *line)?;
                        ports[idx].insert(pname, rates);
                    }
                    "channel" => channels.push(Raw {
                        line: *line,
                        src: require(attrs, "srcActor", *line)?,
                        src_port: require(attrs, "srcPort", *line)?,
                        dst: require(attrs, "dstActor", *line)?,
                        dst_port: require(attrs, "dstPort", *line)?,
                        tokens: attrs
                            .get("initialTokens")
                            .map(|t| {
                                t.parse()
                                    .map_err(|_| syntax(*line, "initialTokens must be an integer"))
                            })
                            .transpose()?
                            .unwrap_or(0),
                    }),
                    "actorProperties" => props_actor = Some(require(attrs, "actor", *line)?),
                    "executionTime" => {
                        let who = props_actor.clone().ok_or_else(|| {
                            syntax(*line, "<executionTime> outside of <actorProperties>")
                        })?;
                        times.insert(
                            who,
                            parse_list::<i64>(&require(attrs, "time", *line)?, *line)?,
                        );
                    }
                    _ => {}
                }
            }
            Event::Close { name, .. } => match name.as_str() {
                "actor" => current_actor = None,
                "actorProperties" => props_actor = None,
                _ => {}
            },
        }
    }

    let mut b = CsdfGraph::builder(graph_name.unwrap_or_else(|| "csdf".to_string()));
    let mut ids: HashMap<String, CsdfActorId> = HashMap::new();
    let mut phase_counts: HashMap<String, usize> = HashMap::new();
    for name in &actors {
        // Phase count: from execution times, else from any port pattern,
        // else a single untimed phase.
        let t = times.get(name).cloned().unwrap_or_else(|| {
            let phases = ports[actor_index[name]]
                .values()
                .map(Vec::len)
                .max()
                .unwrap_or(1);
            vec![0; phases]
        });
        phase_counts.insert(name.clone(), t.len());
        ids.insert(name.clone(), b.actor(name.clone(), t));
    }
    for ch in channels {
        let s = *ids.get(&ch.src).ok_or_else(|| IoError::UnknownActorName {
            name: ch.src.clone(),
        })?;
        let t = *ids.get(&ch.dst).ok_or_else(|| IoError::UnknownActorName {
            name: ch.dst.clone(),
        })?;
        let prod = ports[actor_index[&ch.src]]
            .get(&ch.src_port)
            .cloned()
            .ok_or_else(|| syntax(ch.line, &format!("unknown port '{}'", ch.src_port)))?;
        let cons = ports[actor_index[&ch.dst]]
            .get(&ch.dst_port)
            .cloned()
            .ok_or_else(|| syntax(ch.line, &format!("unknown port '{}'", ch.dst_port)))?;
        if prod.len() != phase_counts[&ch.src] || cons.len() != phase_counts[&ch.dst] {
            return Err(syntax(
                ch.line,
                "port pattern length does not match the actor's phase count",
            ));
        }
        b.channel(s, t, prod, cons, ch.tokens)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsdfGraph {
        let mut b = CsdfGraph::builder("rx");
        let p = b.actor("p", [1, 3]);
        let c = b.actor("c", [2]);
        b.channel(p, c, [2, 0], [1], 0).unwrap();
        b.channel(c, p, [1], [0, 2], 4).unwrap();
        b.channel(p, p, [1, 1], [1, 1], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let t = to_text(&g);
        assert_eq!(from_text(&t).unwrap(), g);
        assert!(t.contains("actor p 1,3"));
        assert!(t.contains("channel p c 2,0 1 0"));
    }

    #[test]
    fn xml_round_trip() {
        let g = sample();
        let x = to_xml(&g);
        assert!(x.contains(r#"type="csdf""#));
        assert!(x.contains(r#"rate="2,0""#));
        assert!(x.contains(r#"time="1,3""#));
        assert_eq!(from_xml(&x).unwrap(), g);
    }

    #[test]
    fn text_errors() {
        assert!(matches!(
            from_text("actor a 1\n"),
            Err(IoError::Syntax { .. })
        ));
        assert!(matches!(
            from_text("csdf g\nactor a 1,x\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            from_text("csdf g\nactor a 1\nchannel a ghost 1 1 0\n"),
            Err(IoError::UnknownActorName { .. })
        ));
        // Pattern length mismatch is a syntax error, not a panic.
        assert!(matches!(
            from_text("csdf g\nactor a 1,2\nactor b 1\nchannel a b 1 1 0\n"),
            Err(IoError::Syntax { line: 4, .. })
        ));
        // Zero-rate pattern propagates as a graph error.
        assert!(matches!(
            from_text("csdf g\nactor a 1\nactor b 1\nchannel a b 0 1 0\n"),
            Err(IoError::Graph(_))
        ));
    }

    #[test]
    fn xml_errors() {
        assert!(from_xml("<csdf").is_err());
        let missing_port = r#"<csdf name='g'>
            <actor name='a'><port name='p' type='out' rate='1'/></actor>
            <actor name='b'><port name='q' type='in' rate='1'/></actor>
            <channel srcActor='a' srcPort='wrong' dstActor='b' dstPort='q'/>
        </csdf>"#;
        assert!(matches!(
            from_xml(missing_port),
            Err(IoError::Syntax { .. })
        ));
    }

    #[test]
    fn analysis_after_round_trip() {
        use sdfr_csdf::throughput;
        let mut b = CsdfGraph::builder("w");
        let w = b.actor("w", [1, 3]);
        b.channel(w, w, [1, 1], [1, 1], 1).unwrap();
        let g = b.build().unwrap();
        let back = from_xml(&to_xml(&g)).unwrap();
        assert_eq!(
            throughput(&back).unwrap().period,
            throughput(&g).unwrap().period
        );
    }
}

//! The line-oriented `.sadf` scenario-workload format.
//!
//! A scenario-aware workload is a set of named scenarios — each an
//! ordinary SDF graph in the [`text`](crate::text) format — plus a
//! scenario FSM whose transitions may carry a mode-transition delay:
//!
//! ```text
//! # comment
//! sadf <workload name>
//! scenario <name>
//!   actor <name> <execution-time>
//!   channel <src> <dst> <production> <consumption> <initial-tokens>
//! end
//! state <state-name> <scenario-name>
//! transition <from-state> <to-state> [delay]
//! initial <state-name>
//! ```
//!
//! Scenario bodies are the `actor`/`channel` statements of the text
//! format (the `graph` header is implied by the `scenario` line). The FSM
//! section is optional: with no `state` declarations, the workload gets
//! one state per scenario in declaration order, connected in a cycle with
//! delay 0 — which is exactly the degenerate cyclo-static shape used by
//! the differential oracle in `crates/sadf`.

use sdfr_graph::SdfGraph;

use crate::IoError;

/// One parsed `.sadf` document, structurally validated (names resolve,
/// the FSM is well-formed) but with no analysis-level checks — those live
/// in `crates/sadf`, which consumes this neutral form.
#[derive(Debug, Clone, PartialEq)]
pub struct SadfDoc {
    /// The workload name from the `sadf` header.
    pub name: String,
    /// The scenarios in declaration order: `(name, graph)`.
    pub scenarios: Vec<(String, SdfGraph)>,
    /// FSM states in declaration order: `(state name, scenario index)`.
    pub states: Vec<(String, usize)>,
    /// FSM transitions `(from state, to state, delay)` by state index.
    pub transitions: Vec<(usize, usize, i64)>,
    /// The initial state index.
    pub initial: usize,
}

fn syntax(line: usize, message: impl Into<String>) -> IoError {
    IoError::Syntax {
        line,
        message: message.into(),
    }
}

/// Parses a `.sadf` document.
///
/// # Errors
///
/// [`IoError::Syntax`] for malformed lines, unresolved scenario/state
/// names, duplicate names, or an FSM without states; scenario bodies
/// additionally surface the text format's own errors.
pub fn from_text(input: &str) -> Result<SadfDoc, IoError> {
    let mut name: Option<String> = None;
    let mut scenarios: Vec<(String, SdfGraph)> = Vec::new();
    // Raw state/transition/initial lines are resolved after all scenario
    // names are known, so sections may appear in any order.
    let mut state_decls: Vec<(usize, String, String)> = Vec::new();
    let mut transition_decls: Vec<(usize, String, String, i64)> = Vec::new();
    let mut initial_decl: Option<(usize, String)> = None;

    let mut lines = input.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "sadf" => {
                if name.is_some() {
                    return Err(syntax(lineno, "duplicate 'sadf' header"));
                }
                if rest.is_empty() {
                    return Err(syntax(lineno, "'sadf' needs a workload name"));
                }
                name = Some(rest.to_string());
            }
            "scenario" => {
                let sname = rest;
                if sname.is_empty() || sname.split_whitespace().count() != 1 {
                    return Err(syntax(lineno, "'scenario' needs exactly one name"));
                }
                if scenarios.iter().any(|(n, _)| n == sname) {
                    return Err(syntax(lineno, format!("duplicate scenario '{sname}'")));
                }
                // Collect the body up to 'end' and delegate to the text
                // parser with the implied 'graph' header. Blank prefix
                // lines keep the inner line numbers aligned with the
                // document, so inner syntax errors point at the right
                // place.
                let mut body = format!("{}graph {sname}\n", "\n".repeat(lineno - 1));
                let mut closed = false;
                for (_, inner) in lines.by_ref() {
                    if inner.trim() == "end" {
                        closed = true;
                        break;
                    }
                    body.push_str(inner);
                    body.push('\n');
                }
                if !closed {
                    return Err(syntax(lineno, format!("scenario '{sname}' has no 'end'")));
                }
                let graph = crate::text::from_text(&body)?;
                scenarios.push((sname.to_string(), graph));
            }
            "state" => {
                let mut parts = rest.split_whitespace();
                let (Some(sname), Some(scenario), None) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(syntax(lineno, "'state' needs <name> <scenario>"));
                };
                state_decls.push((lineno, sname.to_string(), scenario.to_string()));
            }
            "transition" => {
                let mut parts = rest.split_whitespace();
                let (Some(from), Some(to)) = (parts.next(), parts.next()) else {
                    return Err(syntax(lineno, "'transition' needs <from> <to> [delay]"));
                };
                let delay = match parts.next() {
                    None => 0,
                    Some(d) => d.parse().map_err(|_| {
                        syntax(lineno, format!("'{d}' is not a transition delay"))
                    })?,
                };
                if parts.next().is_some() {
                    return Err(syntax(lineno, "'transition' needs <from> <to> [delay]"));
                }
                transition_decls.push((lineno, from.to_string(), to.to_string(), delay));
            }
            "initial" => {
                if initial_decl.is_some() {
                    return Err(syntax(lineno, "duplicate 'initial'"));
                }
                if rest.is_empty() || rest.split_whitespace().count() != 1 {
                    return Err(syntax(lineno, "'initial' needs one state name"));
                }
                initial_decl = Some((lineno, rest.to_string()));
            }
            other => {
                return Err(syntax(lineno, format!("unknown keyword '{other}'")));
            }
        }
    }

    let name = name.ok_or_else(|| syntax(1, "missing 'sadf <name>' header"))?;
    if scenarios.is_empty() {
        return Err(syntax(1, "a workload needs at least one scenario"));
    }
    let scenario_index = |line: usize, sname: &str| -> Result<usize, IoError> {
        scenarios
            .iter()
            .position(|(n, _)| n == sname)
            .ok_or_else(|| syntax(line, format!("unknown scenario '{sname}'")))
    };

    let mut states: Vec<(String, usize)> = Vec::new();
    for (line, sname, scenario) in &state_decls {
        if states.iter().any(|(n, _)| n == sname) {
            return Err(syntax(*line, format!("duplicate state '{sname}'")));
        }
        states.push((sname.clone(), scenario_index(*line, scenario)?));
    }
    let mut transitions: Vec<(usize, usize, i64)> = Vec::new();
    let mut initial = 0;
    if states.is_empty() {
        if let Some((line, _, _, _)) = transition_decls.first() {
            return Err(syntax(*line, "'transition' needs 'state' declarations"));
        }
        if let Some((line, _)) = initial_decl {
            return Err(syntax(line, "'initial' needs 'state' declarations"));
        }
        // Implicit FSM: one state per scenario, cyclic, delay 0.
        for (i, (sname, _)) in scenarios.iter().enumerate() {
            states.push((sname.clone(), i));
        }
        for i in 0..states.len() {
            transitions.push((i, (i + 1) % states.len(), 0));
        }
    } else {
        let state_index = |line: usize, sname: &str| -> Result<usize, IoError> {
            states
                .iter()
                .position(|(n, _)| n == sname)
                .ok_or_else(|| syntax(line, format!("unknown state '{sname}'")))
        };
        for (line, from, to, delay) in &transition_decls {
            transitions.push((state_index(*line, from)?, state_index(*line, to)?, *delay));
        }
        if transitions.is_empty() {
            return Err(syntax(1, "an explicit FSM needs at least one transition"));
        }
        if let Some((line, sname)) = &initial_decl {
            initial = state_index(*line, sname)?;
        }
    }

    Ok(SadfDoc {
        name,
        scenarios,
        states,
        transitions,
        initial,
    })
}

/// Serializes a workload document back to the `.sadf` text format.
/// Round-trips exactly through [`from_text`] for explicit-FSM documents;
/// implicit FSMs are written out explicitly (the two forms parse to the
/// same [`SadfDoc`] up to the synthesized state list).
pub fn to_text(doc: &SadfDoc) -> String {
    let mut out = format!("sadf {}\n", doc.name);
    for (sname, graph) in &doc.scenarios {
        out.push_str(&format!("scenario {sname}\n"));
        for line in crate::text::to_text(graph).lines().skip(1) {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("end\n");
    }
    for (sname, scenario) in &doc.states {
        out.push_str(&format!("state {sname} {}\n", doc.scenarios[*scenario].0));
    }
    for (from, to, delay) in &doc.transitions {
        out.push_str(&format!(
            "transition {} {} {delay}\n",
            doc.states[*from].0, doc.states[*to].0
        ));
    }
    out.push_str(&format!("initial {}\n", doc.states[doc.initial].0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMPLICIT: &str = "\
sadf modes
scenario fast
  actor a 1
  actor b 2
  channel a b 1 1 0
  channel b a 1 1 1
end
scenario slow
  actor a 4
  actor b 5
  channel a b 1 1 0
  channel b a 1 1 1
end
";

    #[test]
    fn implicit_fsm_is_the_scenario_cycle() {
        let doc = from_text(IMPLICIT).unwrap();
        assert_eq!(doc.name, "modes");
        assert_eq!(doc.scenarios.len(), 2);
        assert_eq!(doc.scenarios[0].0, "fast");
        assert_eq!(doc.scenarios[1].1.num_actors(), 2);
        assert_eq!(
            doc.states,
            vec![("fast".to_string(), 0), ("slow".to_string(), 1)]
        );
        assert_eq!(doc.transitions, vec![(0, 1, 0), (1, 0, 0)]);
        assert_eq!(doc.initial, 0);
    }

    #[test]
    fn explicit_fsm_with_delays_round_trips() {
        let text = format!(
            "{IMPLICIT}state s0 fast\nstate s1 slow\n\
             transition s0 s1 3\ntransition s1 s0\ntransition s0 s0 1\ninitial s1\n"
        );
        let doc = from_text(&text).unwrap();
        assert_eq!(doc.states.len(), 2);
        assert_eq!(doc.transitions, vec![(0, 1, 3), (1, 0, 0), (0, 0, 1)]);
        assert_eq!(doc.initial, 1);
        let back = from_text(&to_text(&doc)).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let cases: &[(&str, &str)] = &[
            ("actor a 1\n", "unknown keyword"),
            ("sadf w\n", "at least one scenario"),
            ("sadf w\nscenario s\nactor a 1\n", "no 'end'"),
            ("sadf w\nsadf w\n", "duplicate 'sadf'"),
            (
                "sadf w\nscenario s\nactor a 1\nend\nscenario s\nend\n",
                "duplicate scenario",
            ),
            (
                "sadf w\nscenario s\nactor a 1\nend\ntransition a b\n",
                "'transition' needs 'state'",
            ),
            (
                "sadf w\nscenario s\nactor a 1\nend\nstate x ghost\n",
                "unknown scenario",
            ),
            (
                "sadf w\nscenario s\nactor a 1\nend\nstate x s\n\
                 transition x ghost\n",
                "unknown state",
            ),
            (
                "sadf w\nscenario s\nactor a 1\nend\nstate x s\n",
                "at least one transition",
            ),
            (
                "sadf w\nscenario s\nactor a 1\nend\nstate x s\n\
                 transition x x q\n",
                "not a transition delay",
            ),
        ];
        for (input, needle) in cases {
            let err = from_text(input).unwrap_err().to_string();
            assert!(err.contains(needle), "{input:?}: {err}");
        }
    }

    #[test]
    fn scenario_body_errors_point_into_the_document() {
        let err = from_text("sadf w\nscenario s\nactor a\nend\n").unwrap_err();
        match err {
            IoError::Syntax { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }
}

//! Error type for graph (de)serialization.

use std::error::Error;
use std::fmt;

use sdfr_graph::SdfError;

/// Errors raised while parsing a graph description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoError {
    /// The input is not syntactically valid at the given line (1-based).
    Syntax {
        /// 1-based line number of the offending construct.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The input references an undefined actor name.
    UnknownActorName {
        /// The unresolved name.
        name: String,
    },
    /// The parsed description does not form a valid SDF graph.
    Graph(SdfError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            IoError::UnknownActorName { name } => {
                write!(f, "reference to undefined actor '{name}'")
            }
            IoError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SdfError> for IoError {
    fn from(e: SdfError) -> Self {
        IoError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = IoError::Syntax {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "line 3: bad token");
        assert!(e.source().is_none());
        let e = IoError::UnknownActorName { name: "q".into() };
        assert!(e.to_string().contains("'q'"));
        let e = IoError::Graph(SdfError::EmptyActorName);
        assert!(e.source().is_some());
    }
}

//! An SDF3-compatible XML subset.
//!
//! Writes and reads the topology/property schema used by the SDF3 tool set
//! for plain SDF application graphs:
//!
//! ```xml
//! <?xml version="1.0"?>
//! <sdf3 type="sdf" version="1.0">
//!   <applicationGraph name="g">
//!     <sdf name="g" type="G">
//!       <actor name="a" type="a">
//!         <port name="out0" type="out" rate="2"/>
//!       </actor>
//!       <channel name="ch0" srcActor="a" srcPort="out0"
//!                dstActor="b" dstPort="in0" initialTokens="1"/>
//!     </sdf>
//!     <sdfProperties>
//!       <actorProperties actor="a">
//!         <processor type="p0" default="true">
//!           <executionTime time="5"/>
//!         </processor>
//!       </actorProperties>
//!     </sdfProperties>
//!   </applicationGraph>
//! </sdf3>
//! ```
//!
//! The parser is a small hand-rolled tokenizer for exactly this element
//! set; XML features outside the subset (namespaces, CDATA, entities
//! beyond `&amp; &lt; &gt; &quot; &apos;`) are rejected or ignored.

use std::collections::HashMap;
use std::fmt::Write as _;

use sdfr_graph::{ActorId, SdfGraph};

use crate::IoError;

/// Serializes `g` to the SDF3 XML subset.
pub fn to_xml(g: &SdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(out, r#"<sdf3 type="sdf" version="1.0">"#);
    let _ = writeln!(out, r#"  <applicationGraph name="{}">"#, escape(g.name()));
    let _ = writeln!(out, r#"    <sdf name="{}" type="G">"#, escape(g.name()));
    for (aid, a) in g.actors() {
        let _ = writeln!(
            out,
            r#"      <actor name="{}" type="{}">"#,
            escape(a.name()),
            escape(a.name())
        );
        for (i, &cid) in g.outgoing(aid).iter().enumerate() {
            let _ = writeln!(
                out,
                r#"        <port name="out{}" type="out" rate="{}"/>"#,
                i,
                g.channel(cid).production()
            );
        }
        for (i, &cid) in g.incoming(aid).iter().enumerate() {
            let _ = writeln!(
                out,
                r#"        <port name="in{}" type="in" rate="{}"/>"#,
                i,
                g.channel(cid).consumption()
            );
        }
        let _ = writeln!(out, "      </actor>");
    }
    for (cid, c) in g.channels() {
        let src_port = g
            .outgoing(c.source())
            .iter()
            .position(|&x| x == cid)
            .expect("channel is in its source's outgoing list");
        let dst_port = g
            .incoming(c.target())
            .iter()
            .position(|&x| x == cid)
            .expect("channel is in its target's incoming list");
        let tokens = if c.initial_tokens() > 0 {
            format!(r#" initialTokens="{}""#, c.initial_tokens())
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            r#"      <channel name="ch{}" srcActor="{}" srcPort="out{}" dstActor="{}" dstPort="in{}"{}/>"#,
            cid.index(),
            escape(g.actor(c.source()).name()),
            src_port,
            escape(g.actor(c.target()).name()),
            dst_port,
            tokens
        );
    }
    let _ = writeln!(out, "    </sdf>");
    let _ = writeln!(out, "    <sdfProperties>");
    for (_, a) in g.actors() {
        let _ = writeln!(
            out,
            r#"      <actorProperties actor="{}">"#,
            escape(a.name())
        );
        let _ = writeln!(out, r#"        <processor type="p0" default="true">"#);
        let _ = writeln!(
            out,
            r#"          <executionTime time="{}"/>"#,
            a.execution_time()
        );
        let _ = writeln!(out, "        </processor>");
        let _ = writeln!(out, "      </actorProperties>");
    }
    let _ = writeln!(out, "    </sdfProperties>");
    let _ = writeln!(out, "  </applicationGraph>");
    let _ = writeln!(out, "</sdf3>");
    out
}

/// Parses a graph from the SDF3 XML subset.
///
/// Port rates are taken from the ports referenced by each channel;
/// execution times from `<actorProperties>` (defaulting to 0 when absent,
/// as SDF3 does for untimed graphs).
///
/// # Errors
///
/// - [`IoError::Syntax`] on malformed XML or missing required attributes,
/// - [`IoError::UnknownActorName`] for dangling references,
/// - [`IoError::Graph`] if the description violates SDF constraints.
pub fn from_xml(input: &str) -> Result<SdfGraph, IoError> {
    let events = tokenize(input)?;

    let mut graph_name: Option<String> = None;
    // actor name -> (ports: port name -> rate, execution time)
    let mut actors: Vec<(String, i64)> = Vec::new();
    let mut actor_index: HashMap<String, usize> = HashMap::new();
    let mut ports: Vec<HashMap<String, u64>> = Vec::new();
    struct RawChannel {
        line: usize,
        src: String,
        src_port: String,
        dst: String,
        dst_port: String,
        tokens: u64,
    }
    let mut channels: Vec<RawChannel> = Vec::new();
    let mut current_actor: Option<usize> = None;
    let mut props_actor: Option<String> = None;
    let mut times: HashMap<String, i64> = HashMap::new();

    for ev in &events {
        match ev {
            Event::Open { name, attrs, line } | Event::Empty { name, attrs, line } => {
                let is_empty = matches!(ev, Event::Empty { .. });
                match name.as_str() {
                    "applicationGraph" if graph_name.is_none() => {
                        graph_name = attrs.get("name").cloned();
                    }
                    "sdf" if graph_name.is_none() => {
                        graph_name = attrs.get("name").cloned();
                    }
                    "actor" => {
                        let aname = require(attrs, "name", *line)?;
                        let idx = actors.len();
                        actor_index.insert(aname.clone(), idx);
                        actors.push((aname, 0));
                        ports.push(HashMap::new());
                        if !is_empty {
                            current_actor = Some(idx);
                        }
                    }
                    "port" => {
                        let idx = current_actor
                            .ok_or_else(|| syntax(*line, "<port> outside of an <actor>"))?;
                        let pname = require(attrs, "name", *line)?;
                        let rate: u64 = require(attrs, "rate", *line)?
                            .parse()
                            .map_err(|_| syntax(*line, "rate must be an integer"))?;
                        ports[idx].insert(pname, rate);
                    }
                    "channel" => {
                        channels.push(RawChannel {
                            line: *line,
                            src: require(attrs, "srcActor", *line)?,
                            src_port: require(attrs, "srcPort", *line)?,
                            dst: require(attrs, "dstActor", *line)?,
                            dst_port: require(attrs, "dstPort", *line)?,
                            tokens: attrs
                                .get("initialTokens")
                                .map(|t| {
                                    t.parse().map_err(|_| {
                                        syntax(*line, "initialTokens must be an integer")
                                    })
                                })
                                .transpose()?
                                .unwrap_or(0),
                        });
                    }
                    "actorProperties" => {
                        props_actor = Some(require(attrs, "actor", *line)?);
                    }
                    "executionTime" => {
                        let t: i64 = require(attrs, "time", *line)?
                            .parse()
                            .map_err(|_| syntax(*line, "time must be an integer"))?;
                        let who = props_actor.clone().ok_or_else(|| {
                            syntax(*line, "<executionTime> outside of <actorProperties>")
                        })?;
                        times.insert(who, t);
                    }
                    _ => {}
                }
            }
            Event::Close { name, .. } => match name.as_str() {
                "actor" => current_actor = None,
                "actorProperties" => props_actor = None,
                _ => {}
            },
        }
    }

    let mut b = SdfGraph::builder(graph_name.unwrap_or_else(|| "sdf3".to_string()));
    let mut ids: Vec<ActorId> = Vec::new();
    for (name, _) in &actors {
        let t = times.get(name).copied().unwrap_or(0);
        ids.push(b.actor(name.clone(), t));
    }
    for ch in channels {
        let s = *actor_index.get(&ch.src).ok_or(IoError::UnknownActorName {
            name: ch.src.clone(),
        })?;
        let t = *actor_index.get(&ch.dst).ok_or(IoError::UnknownActorName {
            name: ch.dst.clone(),
        })?;
        let p = *ports[s]
            .get(&ch.src_port)
            .ok_or_else(|| syntax(ch.line, &format!("unknown port '{}'", ch.src_port)))?;
        let c = *ports[t]
            .get(&ch.dst_port)
            .ok_or_else(|| syntax(ch.line, &format!("unknown port '{}'", ch.dst_port)))?;
        b.channel(ids[s], ids[t], p, c, ch.tokens)?;
    }
    Ok(b.build()?)
}

/// A minimal XML event.
pub(crate) enum Event {
    Open {
        name: String,
        attrs: HashMap<String, String>,
        line: usize,
    },
    Empty {
        name: String,
        attrs: HashMap<String, String>,
        line: usize,
    },
    Close {
        name: String,
        #[allow(dead_code)]
        line: usize,
    },
}

pub(crate) fn tokenize(input: &str) -> Result<Vec<Event>, IoError> {
    let mut events = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'<' => {
                let end = input[i..]
                    .find('>')
                    .map(|e| i + e)
                    .ok_or_else(|| syntax(line, "unterminated tag"))?;
                let inner = &input[i + 1..end];
                line += inner.matches('\n').count();
                if inner.starts_with('?') || inner.starts_with('!') {
                    // Declaration or comment; comments may contain '>', so
                    // handle "-->" specially.
                    if inner.starts_with("!--") && !inner.ends_with("--") {
                        let cend = input[i..]
                            .find("-->")
                            .map(|e| i + e + 3)
                            .ok_or_else(|| syntax(line, "unterminated comment"))?;
                        line += input[i..cend].matches('\n').count();
                        i = cend;
                        continue;
                    }
                    i = end + 1;
                    continue;
                }
                if let Some(name) = inner.strip_prefix('/') {
                    events.push(Event::Close {
                        name: name.trim().to_string(),
                        line,
                    });
                } else {
                    let empty = inner.ends_with('/');
                    let body = inner.strip_suffix('/').unwrap_or(inner);
                    let (name, attrs) = parse_tag(body, line)?;
                    if empty {
                        events.push(Event::Empty { name, attrs, line });
                    } else {
                        events.push(Event::Open { name, attrs, line });
                    }
                }
                i = end + 1;
            }
            _ => i += 1,
        }
    }
    Ok(events)
}

fn parse_tag(body: &str, line: usize) -> Result<(String, HashMap<String, String>), IoError> {
    let body = body.trim();
    let (name, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
    if name.is_empty() {
        return Err(syntax(line, "empty tag name"));
    }
    let mut attrs = HashMap::new();
    let mut rest = rest.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| syntax(line, "attribute without value"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|&q| q == '"' || q == '\'')
            .ok_or_else(|| syntax(line, "attribute value must be quoted"))?;
        let close = after[1..]
            .find(quote)
            .ok_or_else(|| syntax(line, "unterminated attribute value"))?;
        let value = unescape(&after[1..1 + close]);
        attrs.insert(key, value);
        rest = after[close + 2..].trim_start();
    }
    Ok((name.to_string(), attrs))
}

pub(crate) fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

pub(crate) fn syntax(line: usize, message: &str) -> IoError {
    IoError::Syntax {
        line,
        message: message.to_string(),
    }
}

pub(crate) fn require(
    attrs: &HashMap<String, String>,
    key: &str,
    line: usize,
) -> Result<String, IoError> {
    attrs
        .get(key)
        .cloned()
        .ok_or_else(|| syntax(line, &format!("missing required attribute '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdfGraph {
        let mut b = SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 2, 3, 1).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let xml = to_xml(&g);
        assert_eq!(from_xml(&xml).unwrap(), g);
    }

    #[test]
    fn parses_handwritten_sdf3_style_input() {
        let xml = r#"<?xml version="1.0"?>
<!-- an SDF3-style file -->
<sdf3 type='sdf' version='1.0'>
  <applicationGraph name='demo'>
    <sdf name='demo' type='D'>
      <actor name='a'><port name='p' type='out' rate='2'/></actor>
      <actor name='b'><port name='q' type='in' rate='3'/></actor>
      <channel name='c' srcActor='a' srcPort='p' dstActor='b' dstPort='q' initialTokens='4'/>
    </sdf>
    <sdfProperties>
      <actorProperties actor='a'>
        <processor type='arm' default='true'><executionTime time='7'/></processor>
      </actorProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#;
        let g = from_xml(xml).unwrap();
        assert_eq!(g.name(), "demo");
        assert_eq!(g.num_actors(), 2);
        let a = g.actor_by_name("a").unwrap();
        assert_eq!(g.actor(a).execution_time(), 7);
        let b = g.actor_by_name("b").unwrap();
        assert_eq!(g.actor(b).execution_time(), 0); // no properties: untimed
        let (_, c) = g.channels().next().unwrap();
        assert_eq!((c.production(), c.consumption()), (2, 3));
        assert_eq!(c.initial_tokens(), 4);
    }

    #[test]
    fn escaping_round_trips() {
        let mut b = SdfGraph::builder("a & \"b\" <c>");
        b.actor("x", 1);
        let g = b.build().unwrap();
        let back = from_xml(&to_xml(&g)).unwrap();
        assert_eq!(back.name(), "a & \"b\" <c>");
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(from_xml("<sdf3"), Err(IoError::Syntax { .. })));
        assert!(matches!(
            from_xml("<actor name='a'><port name='p'/></actor>"),
            Err(IoError::Syntax { .. }) // port without rate
        ));
        assert!(matches!(
            from_xml("<port name='p' rate='1'/>"),
            Err(IoError::Syntax { .. }) // port outside actor
        ));
        assert!(matches!(
            from_xml("<actor name='a' broken></actor>"),
            Err(IoError::Syntax { .. })
        ));
    }

    #[test]
    fn dangling_references() {
        let xml = r#"<sdf name='g'>
            <actor name='a'><port name='p' type='out' rate='1'/></actor>
            <channel srcActor='a' srcPort='p' dstActor='ghost' dstPort='q'/>
        </sdf>"#;
        assert!(matches!(
            from_xml(xml),
            Err(IoError::UnknownActorName { .. })
        ));
        let xml = r#"<sdf name='g'>
            <actor name='a'><port name='p' type='out' rate='1'/></actor>
            <channel srcActor='a' srcPort='wrong' dstActor='a' dstPort='p'/>
        </sdf>"#;
        assert!(matches!(from_xml(xml), Err(IoError::Syntax { .. })));
    }

    #[test]
    fn comments_with_angle_brackets() {
        let xml = "<!-- a > b --><sdf name='g'></sdf>";
        let g = from_xml(xml).unwrap();
        assert_eq!(g.name(), "g");
    }

    #[test]
    fn round_trip_all_benchmarks() {
        for case in sdfr_benchmarks::table1::all() {
            let xml = to_xml(&case.graph);
            let back = from_xml(&xml).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert_eq!(back, case.graph, "{}", case.name);
        }
    }
}

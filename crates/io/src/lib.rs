//! Reading and writing SDF graphs.
//!
//! Two formats are supported:
//!
//! - [`text`] — a compact line-oriented format (`graph` / `actor` /
//!   `channel` statements) convenient for hand-written test inputs,
//! - [`xml`] — a subset of the SDF3 XML schema (Stuijk et al., *SDF For
//!   Free*), interoperable with graphs exported from the SDF3 tool set:
//!   `<applicationGraph>` with `<actor>`/`<port>`/`<channel>` topology and
//!   `<actorProperties>` execution times,
//! - [`csdf`] — the same two formats for cyclo-static graphs, with
//!   comma-separated phase lists,
//! - [`sadf`] — scenario-aware workloads: named text-format scenarios
//!   plus a scenario FSM with per-transition mode-change delays.
//!
//! Both formats round-trip exactly:
//!
//! ```
//! use sdfr_graph::SdfGraph;
//!
//! let mut b = SdfGraph::builder("g");
//! let x = b.actor("x", 2);
//! let y = b.actor("y", 3);
//! b.channel(x, y, 2, 3, 1)?;
//! let g = b.build()?;
//!
//! let text = sdfr_io::text::to_text(&g);
//! assert_eq!(sdfr_io::text::from_text(&text)?, g);
//!
//! let xml = sdfr_io::xml::to_xml(&g);
//! assert_eq!(sdfr_io::xml::from_xml(&xml)?, g);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod csdf;
pub mod sadf;
pub mod text;
pub mod xml;

pub use error::IoError;

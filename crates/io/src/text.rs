//! The compact line-oriented text format.
//!
//! ```text
//! # comment
//! graph <name with spaces allowed>
//! actor <name> <execution-time>
//! channel <src> <dst> <production> <consumption> <initial-tokens>
//! ```
//!
//! Actor names are whitespace-free tokens; the graph name extends to the
//! end of its line. Blank lines and `#` comments are ignored.

use std::collections::HashMap;

use sdfr_graph::{ActorId, SdfGraph};

use crate::IoError;

/// Serializes `g` to the text format.
pub fn to_text(g: &SdfGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph {}\n", g.name()));
    for (_, a) in g.actors() {
        out.push_str(&format!("actor {} {}\n", a.name(), a.execution_time()));
    }
    for (_, c) in g.channels() {
        out.push_str(&format!(
            "channel {} {} {} {} {}\n",
            g.actor(c.source()).name(),
            g.actor(c.target()).name(),
            c.production(),
            c.consumption(),
            c.initial_tokens()
        ));
    }
    out
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// - [`IoError::Syntax`] on malformed lines,
/// - [`IoError::UnknownActorName`] for channels referencing undefined
///   actors,
/// - [`IoError::Graph`] if the description violates SDF constraints.
pub fn from_text(input: &str) -> Result<SdfGraph, IoError> {
    let mut name: Option<String> = None;
    let mut actors: HashMap<String, ActorId> = HashMap::new();
    // Channels are deferred so actors may be declared in any order.
    let mut channels: Vec<(usize, String, String, u64, u64, u64)> = Vec::new();
    let mut actor_decls: Vec<(String, i64)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match keyword {
            "graph" => {
                if rest.is_empty() {
                    return Err(syntax(lineno, "graph requires a name"));
                }
                if name.is_some() {
                    return Err(syntax(lineno, "duplicate graph statement"));
                }
                name = Some(rest.to_string());
            }
            "actor" => {
                let mut parts = rest.split_whitespace();
                let aname = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "actor requires a name"))?;
                let time: i64 = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "actor requires an execution time"))?
                    .parse()
                    .map_err(|_| syntax(lineno, "execution time must be an integer"))?;
                if parts.next().is_some() {
                    return Err(syntax(lineno, "trailing tokens after actor"));
                }
                actor_decls.push((aname.to_string(), time));
            }
            "channel" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 5 {
                    return Err(syntax(
                        lineno,
                        "channel requires: src dst production consumption tokens",
                    ));
                }
                let nums: Result<Vec<u64>, _> = parts[2..].iter().map(|s| s.parse()).collect();
                let nums = nums.map_err(|_| syntax(lineno, "channel rates must be integers"))?;
                channels.push((
                    lineno,
                    parts[0].to_string(),
                    parts[1].to_string(),
                    nums[0],
                    nums[1],
                    nums[2],
                ));
            }
            other => {
                return Err(syntax(lineno, &format!("unknown keyword '{other}'")));
            }
        }
    }

    let mut b = SdfGraph::builder(name.ok_or_else(|| syntax(1, "missing graph statement"))?);
    for (aname, time) in actor_decls {
        let id = b.actor(aname.clone(), time);
        actors.insert(aname, id);
    }
    for (_, src, dst, p, c, d) in channels {
        let s = *actors
            .get(&src)
            .ok_or(IoError::UnknownActorName { name: src })?;
        let t = *actors
            .get(&dst)
            .ok_or(IoError::UnknownActorName { name: dst })?;
        b.channel(s, t, p, c, d)?;
    }
    Ok(b.build()?)
}

fn syntax(line: usize, message: &str) -> IoError {
    IoError::Syntax {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdfGraph {
        let mut b = SdfGraph::builder("my graph");
        let x = b.actor("x", 2);
        let y = b.actor("y", 0);
        b.channel(x, y, 2, 3, 1).unwrap();
        b.channel(y, x, 3, 2, 6).unwrap();
        b.channel(x, x, 1, 1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let text = to_text(&g);
        assert_eq!(from_text(&text).unwrap(), g);
    }

    #[test]
    fn parses_comments_blank_lines_and_order() {
        let input = "\n# header\ngraph g\nchannel b a 1 1 2\nactor a 5\n\nactor b 7\n";
        let g = from_text(input).unwrap();
        assert_eq!(g.num_actors(), 2);
        let (_, c) = g.channels().next().unwrap();
        assert_eq!(g.actor(c.source()).name(), "b");
        assert_eq!(c.initial_tokens(), 2);
    }

    #[test]
    fn syntax_errors_report_lines() {
        assert!(matches!(
            from_text("graph g\nactor a\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            from_text("actor a 1\n"),
            Err(IoError::Syntax { .. })
        ));
        assert!(matches!(
            from_text("graph g\nblah\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            from_text("graph g\ngraph h\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            from_text("graph g\nchannel a b 1 1\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            from_text("graph g\nactor a one\n"),
            Err(IoError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn unknown_actor_reported() {
        assert!(matches!(
            from_text("graph g\nactor a 1\nchannel a ghost 1 1 0\n"),
            Err(IoError::UnknownActorName { .. })
        ));
    }

    #[test]
    fn graph_errors_propagate() {
        // Zero rate.
        assert!(matches!(
            from_text("graph g\nactor a 1\nchannel a a 0 1 0\n"),
            Err(IoError::Graph(_))
        ));
        // Negative execution time.
        assert!(matches!(
            from_text("graph g\nactor a -2\n"),
            Err(IoError::Graph(_))
        ));
    }

    #[test]
    fn graph_name_keeps_spaces() {
        let g = from_text("graph a graph with spaces\n").unwrap();
        assert_eq!(g.name(), "a graph with spaces");
    }
}

//! Robustness: the parsers must never panic, whatever bytes they are fed —
//! malformed input is always a structured `IoError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn text_parser_never_panics(input in ".{0,200}") {
        let _ = sdfr_io::text::from_text(&input);
    }

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = sdfr_io::xml::from_xml(&input);
    }

    #[test]
    fn csdf_text_parser_never_panics(input in ".{0,200}") {
        let _ = sdfr_io::csdf::from_text(&input);
    }

    #[test]
    fn csdf_xml_parser_never_panics(input in ".{0,200}") {
        let _ = sdfr_io::csdf::from_xml(&input);
    }

    /// Mutations of a valid file never panic either (they may parse or
    /// error, but must return).
    #[test]
    fn mutated_valid_files_never_panic(pos in 0usize..120, byte in any::<u8>()) {
        let base = "graph g\nactor a 1\nactor b 2\nchannel a b 2 3 1\nchannel b a 3 2 4\n";
        let mut bytes = base.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = sdfr_io::text::from_text(&s);
        }
    }

    #[test]
    fn mutated_valid_xml_never_panics(pos in 0usize..400, byte in any::<u8>()) {
        let mut b = sdfr_graph::SdfGraph::builder("g");
        let x = b.actor("x", 2);
        let y = b.actor("y", 3);
        b.channel(x, y, 2, 3, 1).unwrap();
        let base = sdfr_io::xml::to_xml(&b.build().unwrap());
        let mut bytes = base.into_bytes();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = sdfr_io::xml::from_xml(&s);
        }
    }
}

//! Property tests of the graph substrate: schedule admissibility,
//! simulation invariants, and the interplay between them, on random
//! consistent, live graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::benchmarks::random::{random_live_sdf, RandomSdfConfig};
use sdf_reductions::graph::execution::{simulate, SimulationOptions};
use sdf_reductions::graph::repetition::repetition_vector;
use sdf_reductions::graph::schedule::{is_valid_schedule, sequential_schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated schedules are admissible and fire γ(a) times per actor.
    #[test]
    fn schedules_are_valid(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        let gamma = repetition_vector(&g).unwrap();
        let s = sequential_schedule(&g, &gamma).unwrap();
        prop_assert!(is_valid_schedule(&g, &gamma, &s), "{}", g);
        prop_assert_eq!(s.len() as u64, gamma.iteration_length());
    }

    /// Self-timed simulation fires exactly `iterations · γ(a)` times, its
    /// iteration completion times are non-decreasing, and peaks dominate
    /// the initial token counts.
    #[test]
    fn simulation_invariants(seed in any::<u64>(), iters in 1u64..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        let gamma = repetition_vector(&g).unwrap();
        let trace = simulate(&g, &SimulationOptions::iterations(iters)).unwrap();
        for (a, count) in gamma.iter() {
            prop_assert_eq!(trace.fire_counts[a.index()], count * iters);
        }
        prop_assert_eq!(trace.iteration_completions.len(), iters as usize);
        let mut prev = 0;
        for &t in &trace.iteration_completions {
            prop_assert!(t >= prev);
            prev = t;
        }
        prop_assert_eq!(trace.makespan, *trace.iteration_completions.last().unwrap());
        for (cid, c) in g.channels() {
            prop_assert!(trace.channel_peak_tokens[cid.index()] >= c.initial_tokens());
        }
    }

    /// Recorded firings are consistent: starts are non-decreasing per
    /// actor, every end = start + execution time, and counts match.
    #[test]
    fn firing_records_consistent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        let trace = simulate(&g, &SimulationOptions::iterations(2).with_firings()).unwrap();
        let firings = trace.firings.as_ref().unwrap();
        for (a, actor) in g.actors() {
            let fs = &firings[a.index()];
            prop_assert_eq!(fs.len() as u64, trace.fire_counts[a.index()]);
            let mut prev_start = 0;
            for &(start, end) in fs {
                prop_assert_eq!(end - start, actor.execution_time());
                prop_assert!(start >= prev_start);
                prev_start = start;
            }
        }
    }

    /// Scaling all execution times by a constant scales completion times.
    #[test]
    fn time_scaling(seed in any::<u64>(), k in 2i64..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        // Rebuild with scaled times.
        let mut b = sdf_reductions::graph::SdfGraph::builder("scaled");
        let ids: Vec<_> = g
            .actors()
            .map(|(_, a)| b.actor(a.name().to_string(), a.execution_time() * k))
            .collect();
        for (_, c) in g.channels() {
            b.channel(
                ids[c.source().index()],
                ids[c.target().index()],
                c.production(),
                c.consumption(),
                c.initial_tokens(),
            )
            .unwrap();
        }
        let scaled = b.build().unwrap();
        let t1 = simulate(&g, &SimulationOptions::iterations(3)).unwrap();
        let t2 = simulate(&scaled, &SimulationOptions::iterations(3)).unwrap();
        prop_assert_eq!(t2.makespan, t1.makespan * k);
        for (a, b) in t1
            .iteration_completions
            .iter()
            .zip(&t2.iteration_completions)
        {
            prop_assert_eq!(*b, a * k);
        }
    }
}

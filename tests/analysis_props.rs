//! Cross-crate property tests of the analysis stack on random graphs:
//! auto-concurrency monotonicity, schedule synthesis on converted graphs,
//! bottleneck sanity, and buffer minimization.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::analysis::bottleneck::bottleneck;
use sdf_reductions::analysis::buffer::{minimize_capacities, period_with_capacities};
use sdf_reductions::analysis::static_schedule::rate_optimal_schedule;
use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::benchmarks::random::{random_live_sdf, RandomSdfConfig};
use sdf_reductions::core::novel;

fn config() -> RandomSdfConfig {
    RandomSdfConfig {
        min_actors: 2,
        max_actors: 6,
        max_gamma: 4,
        ..RandomSdfConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tightening auto-concurrency only slows a graph; loosening it only
    /// speeds it up (monotone in the bound).
    #[test]
    fn auto_concurrency_is_monotone(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let unbounded = throughput(&g).unwrap().period();
        let mut prev = None; // period at the previous (smaller) bound
        for bound in [1u64, 2, 4, 8] {
            let b = g.with_auto_concurrency(bound);
            let p = throughput(&b).unwrap().period();
            // Bounded is never faster than unbounded.
            if let (Some(pb), Some(pu)) = (p, unbounded) {
                prop_assert!(pb >= pu, "bound {bound}: {pb} >= {pu}\n{g}");
            }
            prop_assert!(p.is_some(), "a bounded graph has a finite period");
            // Larger bounds never slow it down.
            if let (Some(prev), Some(cur)) = (prev, p) {
                prop_assert!(cur <= prev, "bound {bound}: {cur} <= {prev}\n{g}");
            }
            prev = p;
        }
    }

    /// The novel conversion's HSDF admits a rate-optimal static schedule
    /// whose period equals the original graph's.
    #[test]
    fn converted_graphs_schedule_rate_optimally(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let original = throughput(&g).unwrap().period();
        let conv = novel::convert(&g).unwrap();
        match rate_optimal_schedule(&conv.graph).unwrap() {
            Some(s) => {
                prop_assert!(s.is_admissible(&conv.graph));
                prop_assert_eq!(Some(s.period()), original, "{}", g);
            }
            None => prop_assert_eq!(original, None, "{}", g),
        }
    }

    /// The bottleneck report names real channels/actors and its period
    /// matches the throughput analysis.
    #[test]
    fn bottleneck_is_sane(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let period = throughput(&g).unwrap().period();
        match bottleneck(&g).unwrap() {
            Some(report) => {
                prop_assert_eq!(Some(report.period), period);
                prop_assert!(!report.tokens.is_empty());
                for c in &report.channels {
                    prop_assert!(c.index() < g.num_channels());
                    // Critical channels carry initial tokens.
                    prop_assert!(g.channel(*c).initial_tokens() > 0);
                }
                for a in &report.actors {
                    prop_assert!(a.index() < g.num_actors());
                }
            }
            None => prop_assert_eq!(period, None),
        }
    }

    /// Minimized capacities stay feasible and throughput-preserving.
    #[test]
    fn minimized_capacities_preserve_period(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep instances small: each probe is a full spectral analysis.
        let g = random_live_sdf(&mut rng, &RandomSdfConfig {
            min_actors: 2,
            max_actors: 4,
            max_gamma: 3,
            extra_forward_edges: 1,
            back_edges: 1,
            ..RandomSdfConfig::default()
        });
        let target = throughput(&g).unwrap().period();
        let caps = minimize_capacities(&g, 8).unwrap();
        prop_assert_eq!(period_with_capacities(&g, &caps).unwrap(), target, "{}", g);
    }
}

//! Property tests for the cyclo-static extension: the compact HSDF
//! conversion preserves the iteration period, and serialization round-trips
//! — on random live CSDF graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::analysis::throughput::hsdf_period;
use sdf_reductions::benchmarks::random::{random_live_csdf, RandomSdfConfig};
use sdf_reductions::csdf;
use sdf_reductions::io::csdf as csdf_io;

fn config() -> RandomSdfConfig {
    RandomSdfConfig {
        min_actors: 2,
        max_actors: 5,
        max_gamma: 4,
        ..RandomSdfConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's conversion, applied to CSDF: the compact HSDF has the
    /// same iteration period.
    #[test]
    fn csdf_hsdf_conversion_preserves_period(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_csdf(&mut rng, &config());
        let thr = csdf::throughput(&g).unwrap();
        let hsdf = csdf::to_hsdf(&g).unwrap();
        prop_assert!(hsdf.is_homogeneous());
        prop_assert_eq!(hsdf_period(&hsdf).unwrap().finite(), thr.period, "{}", g);
    }

    /// Text and XML round-trips are exact for CSDF graphs.
    #[test]
    fn csdf_serialization_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_csdf(&mut rng, &config());
        prop_assert_eq!(&csdf_io::from_text(&csdf_io::to_text(&g)).unwrap(), &g);
        prop_assert_eq!(&csdf_io::from_xml(&csdf_io::to_xml(&g)).unwrap(), &g);
    }

    /// Phase-level iteration lengths and schedules agree.
    #[test]
    fn csdf_schedule_covers_iteration(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_csdf(&mut rng, &config());
        let rep = csdf::repetition_vector(&g).unwrap();
        let s = csdf::sequential_schedule(&g, &rep).unwrap();
        prop_assert_eq!(s.firings.len() as u64, rep.iteration_length(&g));
    }
}

//! Property tests: both SDF→HSDF conversions preserve the iteration period
//! on random consistent, live, multirate graphs, and the three throughput
//! analysis routes agree.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::analysis::throughput::{
    estimate_period_simulated, throughput, throughput_state_space,
};
use sdf_reductions::benchmarks::random::{random_live_sdf, RandomSdfConfig};
use sdf_reductions::core::equivalence::validate_conversions;

fn config() -> RandomSdfConfig {
    RandomSdfConfig {
        min_actors: 2,
        max_actors: 6,
        max_gamma: 4,
        ..RandomSdfConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline equivalence claim of Sec. 6, on random multirate graphs.
    #[test]
    fn conversions_preserve_period(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let outcome = validate_conversions(&g).unwrap();
        prop_assert!(outcome.is_ok(), "period mismatch on\n{}: {:?}", g, outcome);
    }

    /// Spectral and state-space throughput agree exactly.
    #[test]
    fn analysis_routes_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let spectral = throughput(&g).unwrap();
        let state_space = throughput_state_space(&g, 100_000).unwrap();
        prop_assert_eq!(spectral.period(), state_space.period(), "{}", g);
    }

    /// The event-driven simulator converges to the spectral period.
    #[test]
    fn simulation_converges_to_spectral(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &config());
        let Some(period) = throughput(&g).unwrap().period() else {
            return Ok(()); // unbounded: nothing to compare
        };
        // Measure over a window that is a multiple of any small cyclicity.
        let measured = estimate_period_simulated(&g, 48, 24).unwrap();
        prop_assert_eq!(measured, period, "{}", g);
    }
}

//! Property tests: serialization round-trips in both formats, for the
//! benchmark suite and for random graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::benchmarks::random::{random_live_sdf, RandomSdfConfig};
use sdf_reductions::benchmarks::{regular, table1};
use sdf_reductions::io::{text, xml};

#[test]
fn benchmarks_round_trip_in_both_formats() {
    for case in table1::all() {
        let t = text::to_text(&case.graph);
        assert_eq!(text::from_text(&t).unwrap(), case.graph, "{}", case.name);
        let x = xml::to_xml(&case.graph);
        assert_eq!(xml::from_xml(&x).unwrap(), case.graph, "{}", case.name);
    }
    let f = regular::Figure1::new(12).graph;
    assert_eq!(text::from_text(&text::to_text(&f)).unwrap(), f);
    assert_eq!(xml::from_xml(&xml::to_xml(&f)).unwrap(), f);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_graphs_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        prop_assert_eq!(&text::from_text(&text::to_text(&g)).unwrap(), &g);
        prop_assert_eq!(&xml::from_xml(&xml::to_xml(&g)).unwrap(), &g);
    }

    /// Cross-format: text -> graph -> xml -> graph is the identity too.
    #[test]
    fn cross_format_composition(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        let via_xml = xml::from_xml(&xml::to_xml(
            &text::from_text(&text::to_text(&g)).unwrap(),
        ))
        .unwrap();
        prop_assert_eq!(via_xml, g);
    }
}

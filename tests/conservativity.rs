//! Property tests for the conservativity theorem (paper, Thm. 1) and the
//! unfolding correspondence (Prop. 2), over randomly generated graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::benchmarks::random::{random_live_hsdf, RandomSdfConfig};
use sdf_reductions::core::auto::auto_abstraction;
use sdf_reductions::core::conservativity::{conservative_period_bound, verify_abstraction};
use sdf_reductions::core::unfold::unfold;
use sdf_reductions::core::CoreError;
use sdf_reductions::maxplus::Rational;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid abstraction of every live HSDF graph passes the
    /// mechanical Prop. 1 premise check (the machinery the paper's proof is
    /// built on), and the resulting period bound is conservative.
    #[test]
    fn random_hsdf_abstractions_are_conservative(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomSdfConfig {
            min_actors: 2,
            max_actors: 9,
            back_edges: 2,
            ..RandomSdfConfig::default()
        };
        let g = random_live_hsdf(&mut rng, &cfg);
        let abs = match auto_abstraction(&g) {
            Ok(abs) => abs,
            // The only legitimate failure is a zero-delay cycle, which the
            // generator never produces for live graphs.
            Err(e) => panic!("auto abstraction failed: {e}\n{g}"),
        };
        // Thm. 1's premises hold mechanically.
        prop_assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
        // And the throughput bound is conservative whenever the abstract
        // graph is analysable (a deadlocked abstract graph is the trivially
        // conservative "zero throughput" prediction).
        let actual = throughput(&g).unwrap().period();
        match conservative_period_bound(&g, &abs) {
            Ok(Some(bound)) => {
                if let Some(actual) = actual {
                    prop_assert!(
                        actual <= bound,
                        "period {} must be below bound {}\n{}",
                        actual,
                        bound,
                        g
                    );
                }
            }
            Ok(None) => {
                // No recurrent constraint in the abstract graph: only
                // conservative if the original also has none.
                prop_assert_eq!(actual, None);
            }
            Err(CoreError::Graph(_)) => {} // deadlocked abstract graph
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Prop. 2: the N-fold unfolding has period N·λ per unfolded iteration.
    #[test]
    fn unfolding_scales_period(seed in any::<u64>(), n in 1u64..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomSdfConfig {
            min_actors: 2,
            max_actors: 7,
            ..RandomSdfConfig::default()
        };
        let g = random_live_hsdf(&mut rng, &cfg);
        let u = unfold(&g, n);
        let p = throughput(&g).unwrap().period();
        let pu = throughput(&u).unwrap().period();
        prop_assert_eq!(pu, p.map(|p| p * Rational::from(n as i64)));
    }

    /// Grouping everything into a single abstract actor (the coarsest
    /// abstraction) still verifies and still bounds.
    #[test]
    fn coarsest_abstraction_is_conservative(seed in any::<u64>()) {
        use sdf_reductions::core::auto::auto_abstraction_with;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomSdfConfig {
            min_actors: 2,
            max_actors: 6,
            ..RandomSdfConfig::default()
        };
        let g = random_live_hsdf(&mut rng, &cfg);
        let abs = auto_abstraction_with(&g, |_| "ALL".to_string()).unwrap();
        prop_assert_eq!(verify_abstraction(&g, &abs).unwrap(), Ok(()));
        let actual = throughput(&g).unwrap().period();
        if let (Some(actual), Ok(Some(bound))) =
            (actual, conservative_period_bound(&g, &abs))
        {
            prop_assert!(actual <= bound);
        }
    }
}

//! Integration test: the Table-1 reproduction, end to end across crates.
//!
//! Asserts the three claims the paper's evaluation makes:
//! 1. the traditional conversion has exactly `Σγ` actors (we match the
//!    paper's column exactly),
//! 2. the novel conversion respects the `N(N+2)` / `N(2N+1)` bounds and
//!    lands in the paper's order of magnitude, including the modem
//!    inversion,
//! 3. both conversions preserve the iteration period.

use sdf_reductions::analysis::throughput::{hsdf_period, throughput};
use sdf_reductions::benchmarks::table1;
use sdf_reductions::core::{novel, traditional};

#[test]
fn traditional_counts_match_paper_exactly() {
    for case in table1::all() {
        let conv = traditional::convert(&case.graph).unwrap();
        assert_eq!(
            conv.graph.num_actors() as u64,
            case.paper_traditional_actors,
            "{}",
            case.name
        );
        assert!(conv.graph.is_homogeneous(), "{}", case.name);
    }
}

#[test]
fn novel_counts_match_paper_shape() {
    for case in table1::all() {
        let conv = novel::convert(&case.graph).unwrap();
        let actors = conv.graph.num_actors();
        assert!(actors <= conv.actor_bound(), "{}: actor bound", case.name);
        assert!(
            conv.graph.num_channels() <= conv.edge_bound(),
            "{}: edge bound",
            case.name
        );
        assert!(
            conv.graph.total_initial_tokens() <= conv.symbolic.num_tokens() as u64,
            "{}: token bound",
            case.name
        );
        // Within 2x of the paper's published count.
        let rel = actors as f64 / case.paper_new_actors as f64;
        assert!(
            (0.5..=2.0).contains(&rel),
            "{}: {} vs paper {}",
            case.name,
            actors,
            case.paper_new_actors
        );
        // The winner matches the paper's: new smaller everywhere except
        // the modem.
        let trad = case.paper_traditional_actors as usize;
        if case.name == "modem" {
            assert!(actors > trad, "modem must invert");
        } else {
            assert!(actors < trad, "{}: new must win", case.name);
        }
    }
}

#[test]
fn both_conversions_preserve_the_iteration_period() {
    for case in table1::all() {
        let original = throughput(&case.graph).unwrap().period();
        let trad = traditional::convert(&case.graph).unwrap();
        let new = novel::convert(&case.graph).unwrap();
        assert_eq!(
            hsdf_period(&trad.graph).unwrap().finite(),
            original,
            "{}: traditional",
            case.name
        );
        assert_eq!(
            hsdf_period(&new.graph).unwrap().finite(),
            original,
            "{}: novel",
            case.name
        );
    }
}

#[test]
fn elision_ablation_on_the_suite() {
    for case in table1::all() {
        let with = novel::convert(&case.graph).unwrap();
        let without = novel::convert_without_elision(&case.graph).unwrap();
        assert!(
            without.graph.num_actors() >= with.graph.num_actors(),
            "{}",
            case.name
        );
        assert_eq!(
            hsdf_period(&with.graph).unwrap().finite(),
            hsdf_period(&without.graph).unwrap().finite(),
            "{}",
            case.name
        );
    }
}

//! Property tests: platform transformations are conservative — binding,
//! arbitration and interconnect modelling never make a graph faster. This
//! is the Prop. 1 monotonicity argument exercised end to end.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::benchmarks::random::{random_live_hsdf, random_live_sdf, RandomSdfConfig};
use sdf_reductions::graph::{ChannelId, SdfError};
use sdf_reductions::platform::noc::{insert_connection, ConnectionLatency};
use sdf_reductions::platform::{apply_mapping, apply_tdm, Mapping, TdmSlot};

fn period_of(
    g: &sdf_reductions::graph::SdfGraph,
) -> Result<Option<sdf_reductions::maxplus::Rational>, SdfError> {
    Ok(throughput(g)?.period())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TDM inflation never decreases the period.
    #[test]
    fn tdm_is_conservative(seed in any::<u64>(), slot in 1i64..5, extra in 0i64..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        let base = period_of(&g).unwrap();
        let wheel = slot + extra;
        let slots: Vec<_> = g
            .actor_ids()
            .map(|a| (a, TdmSlot::new(slot, wheel)))
            .collect();
        let shared = apply_tdm(&g, &slots).unwrap();
        let inflated = period_of(&shared).unwrap();
        match (base, inflated) {
            (Some(b), Some(i)) => prop_assert!(i >= b, "{i} >= {b}\n{g}"),
            (None, _) => {} // unbounded stays unbounded or becomes bounded-free
            (Some(_), None) => prop_assert!(false, "inflation cannot unbound"),
        }
    }

    /// Binding any two actors of a live HSDF graph to one processor (in an
    /// order compatible with the token-free topology) never decreases the
    /// period.
    #[test]
    fn mapping_is_conservative(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_hsdf(&mut rng, &RandomSdfConfig {
            min_actors: 2,
            max_actors: 6,
            ..RandomSdfConfig::default()
        });
        let base = period_of(&g).unwrap();
        // Pick two distinct actors in topological-ish order (by id, which
        // the generator lays out along its spanning chain).
        let n = g.num_actors();
        let i = rng.gen_range(0..n - 1);
        let j = rng.gen_range(i + 1..n);
        let a = sdf_reductions::graph::ActorId::from_index(i);
        let b = sdf_reductions::graph::ActorId::from_index(j);
        let mut m = Mapping::new();
        m.processor([a, b]);
        let mapped = apply_mapping(&g, &m).unwrap();
        match (base, period_of(&mapped)) {
            (Some(base), Ok(Some(p))) => prop_assert!(p >= base, "{p} >= {base}\n{g}"),
            // The chosen static order may deadlock against existing
            // back-edges: a legitimate (infinitely slow) outcome.
            (_, Err(SdfError::Deadlock { .. })) => {}
            (None, Ok(_)) => {}
            (Some(_), Ok(None)) => prop_assert!(false, "mapping cannot unbound"),
            (_, Err(e)) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Inserting a NoC connection on any channel never decreases the
    /// period, and with zero latencies it preserves it for serialized
    /// stages.
    #[test]
    fn noc_is_conservative(seed in any::<u64>(), ca in 0i64..4, link in 0i64..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_live_sdf(&mut rng, &RandomSdfConfig::default());
        if g.num_channels() == 0 {
            return Ok(());
        }
        let target = ChannelId::from_index(rng.gen_range(0..g.num_channels()));
        // Self-loop channels keep their role; skip them as NoC targets.
        if g.channel(target).is_self_loop() {
            return Ok(());
        }
        let base = period_of(&g).unwrap();
        let noc = insert_connection(&g, target, ConnectionLatency::symmetric(ca, link)).unwrap();
        let with_noc = period_of(&noc).unwrap();
        match (base, with_noc) {
            (Some(b), Some(w)) => prop_assert!(w >= b, "{w} >= {b}\n{g}"),
            (None, _) => {}
            // The stage self-loops serialize transport: a previously
            // unbounded graph can become bounded, but never the converse.
            (Some(_), None) => prop_assert!(false, "noc cannot unbound"),
        }
    }
}

//! Smoke test of the public facade: a complete user workflow touching
//! every crate through `sdf_reductions::*` paths.

use sdf_reductions::analysis::buffer::self_timed_buffer_bounds;
use sdf_reductions::analysis::latency::iteration_makespan;
use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::core::auto::auto_abstraction;
use sdf_reductions::core::conservativity::conservative_period_bound;
use sdf_reductions::core::{abstract_graph, novel, traditional};
use sdf_reductions::graph::repetition::repetition_vector;
use sdf_reductions::graph::{dot, SdfGraph};
use sdf_reductions::io::text;
use sdf_reductions::maxplus::Rational;

#[test]
fn full_workflow() {
    // 1. Model: a two-stage pipeline with feedback, defined in text form.
    let g: SdfGraph = text::from_text(
        "graph demo\n\
         actor produce1 2\n\
         actor produce2 2\n\
         actor consume1 3\n\
         channel produce1 produce2 1 1 0\n\
         channel produce2 consume1 2 1 0\n\
         channel consume1 produce1 1 2 4\n",
    )
    .unwrap();

    // 2. Basic analyses.
    let gamma = repetition_vector(&g).unwrap();
    assert_eq!(gamma.iteration_length(), 4); // (1, 1, 2)
    let thr = throughput(&g).unwrap();
    let period = thr.period().unwrap();
    assert!(period > Rational::ZERO);
    assert!(iteration_makespan(&g).unwrap() >= 5);
    let buffers = self_timed_buffer_bounds(&g, 8).unwrap();
    assert_eq!(buffers.len(), g.num_channels());

    // 3. Conversions.
    let trad = traditional::convert(&g).unwrap();
    assert_eq!(trad.graph.num_actors(), 4);
    let new = novel::convert(&g).unwrap();
    assert!(new.graph.num_actors() <= new.actor_bound());

    // 4. Abstraction of the traditional HSDF expansion (the multirate
    //    pipeline of the paper: convert to HSDF first, then abstract).
    let abs = auto_abstraction(&trad.graph).unwrap();
    let small = abstract_graph(&trad.graph, &abs).unwrap();
    assert!(small.num_actors() <= trad.graph.num_actors());
    let bound = conservative_period_bound(&trad.graph, &abs)
        .unwrap()
        .unwrap();
    assert!(period <= bound);

    // 5. Export.
    assert!(dot::to_dot(&small).starts_with("digraph"));
}

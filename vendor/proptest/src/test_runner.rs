//! Deterministic case runner: config, RNG derivation, and case errors.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

/// Upstream proptest re-exports `test_runner::Config` under this name in its
/// prelude; in-tree code uses the alias exclusively.
pub type ProptestConfig = Config;

impl Config {
    /// A default config overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// A failed (not panicked) property case, produced by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl<E: Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    seed_base: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: Config, name: &str) -> Self {
        let env_seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        TestRunner {
            config,
            seed_base: fnv1a(name.as_bytes()) ^ env_seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case`; equal inputs yield equal streams.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng(StdRng::seed_from_u64(self.seed_base.wrapping_add(
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1),
        )))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

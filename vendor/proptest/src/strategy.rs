//! Value-generation strategies (no shrinking).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::Rng as _;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values. `Debug` so failing cases can report
    /// their inputs.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// returns for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Weighted union of strategies over a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Creates a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms, total }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String generation from a `&'static str` pattern.
///
/// Upstream proptest treats the pattern as a full regex; this stub supports
/// the forms used in-tree — `.{m,n}`, `.*`, `.+` — generating strings whose
/// char count lies in the given bounds, drawn from a pool mixing printable
/// ASCII, whitespace/control characters, and arbitrary Unicode scalars.
/// Any other pattern generates its literal text.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = match parse_dot_repeat(self) {
            Some(bounds) => bounds,
            None => return (*self).to_string(),
        };
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    match pattern {
        ".*" => return Some((0, 64)),
        ".+" => return Some((1, 64)),
        _ => {}
    }
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

fn random_char(rng: &mut TestRng) -> char {
    match rng.gen_range(0u32..10) {
        // Mostly printable ASCII: keeps parser fuzz inputs interesting.
        0..=6 => char::from(rng.gen_range(0x20u8..0x7f)),
        7 => *['\n', '\t', '\r', '\0', '"', '<', '>', '&']
            .get(rng.gen_range(0usize..8))
            .unwrap_or(&'\n'),
        _ => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                return c;
            }
        },
    }
}

//! `any::<T>()` — full-range generation for primitive types.

use std::fmt;
use std::marker::PhantomData;

use rand::RngCore as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A`: uniform over the whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

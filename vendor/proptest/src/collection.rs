//! Collection strategies (`proptest::collection::vec`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: an exact `usize` or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements the slice of proptest this workspace uses: the [`proptest!`]
//! macro, `prop_assert*` macros, [`prop_oneof!`], [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, integer-range and string-pattern strategies,
//! [`arbitrary::any`], [`collection::vec`], and
//! [`test_runner::Config::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its inputs and the case index;
//!   it is not minimized.
//! - **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from a hash of `t`'s fully qualified name and `i` (plus the optional
//!   `PROPTEST_SEED` environment variable), so failures reproduce exactly.
//!   `*.proptest-regressions` files are ignored.
//! - String "regex" strategies support only `.{m,n}` / `.*` / `.+` patterns;
//!   anything else is generated as the literal pattern text.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-import convenience mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __runner = $crate::test_runner::TestRunner::new(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __cases = __runner.cases();
                for __case in 0..__cases {
                    let mut __rng = __runner.rng_for_case(__case);
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __v =
                            $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ", stringify!($pat), &__v));
                        let $pat = __v;
                    )+
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __cases, __e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

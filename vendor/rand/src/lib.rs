//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides exactly the surface the workspace uses: [`Rng::gen_range`] over
//! integer ranges, [`Rng::gen_bool`], and a deterministic [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`]. The generator is SplitMix64,
//! which is more than adequate for randomized tests and benchmark inputs.
//! It intentionally does **not** promise the same value streams as upstream
//! `rand`; callers in this workspace only rely on determinism per seed.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Core trait for random number generators: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream, uniform over all of `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed. Equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd + fmt::Display {
    /// Uniform sample from `lo..hi`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `lo..=hi`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                // Unsigned distance is exact even for signed types: the
                // wrapping difference of the bit patterns equals the true
                // distance whenever it fits in u64, which it always does.
                let span = (hi as u64).wrapping_sub(lo as u64);
                let off = rng.next_u64() % span;
                lo.wrapping_add(off as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit range: every bit pattern is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % span;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types usable as the argument of [`Rng::gen_range`].
///
/// Blanket-implemented over [`SampleUniform`] element types so that untyped
/// integer literals (`rng.gen_range(0..=2) * some_u64`) unify with the use
/// site, exactly as with upstream `rand`.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): a full-period 64-bit
            // generator with good equidistribution, one step per output.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Glob-import convenience mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..=15);
            assert!((-5..=15).contains(&v));
            let w = r.gen_range(3usize..10);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides the surface the workspace benches use: `criterion_group!` /
//! `criterion_main!` (both forms), [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`], and
//! [`Bencher::iter`]. Instead of statistical analysis it runs a simple
//! warm-up + timing loop and prints one line per benchmark — enough to eyeball
//! relative performance and, more importantly, to keep `--all-targets` builds
//! and `cargo bench` runs working offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Builder methods mirror upstream but only `sample_size`,
/// `warm_up_time`, and `measurement_time` are honoured.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, id, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let cfg = self.criterion.clone();
        run_one(&cfg, &label, &mut f);
        self
    }

    /// Finishes the group (no-op; upstream flushes reports here).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a displayed parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"howard/64"`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        // At least one iteration per sample; more when a single run is fast.
        let per_run = warm_iters.max(1) as f64 / self.warm_up_time.as_secs_f64().max(1e-9);
        let iters = ((per_run * budget_per_sample.as_secs_f64()) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn run_one(cfg: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size: cfg.sample_size,
        warm_up_time: cfg.warm_up_time,
        measurement_time: cfg.measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{label}: median {median:?} (best {best:?}, {} samples)",
        b.samples.len()
    );
}

/// Defines a benchmark group function; supports both the positional and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! The paper's Fig. 5 case study as a library workflow: build the NoC
//! remote-memory prefetch model (1584 block computations per video frame),
//! derive its abstraction automatically, verify conservativity
//! mechanically, and compare throughput.
//!
//! Run with `cargo run --release --example prefetch_abstraction`.

use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::benchmarks::regular::prefetch_model;
use sdf_reductions::core::abstract_graph;
use sdf_reductions::core::auto::auto_abstraction;
use sdf_reductions::core::conservativity::{conservative_period_bound, verify_abstraction};
use sdf_reductions::graph::dot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blocks = 1584;
    let g = prefetch_model(blocks);
    println!(
        "original model: {} actors, {} channels ({} blocks per frame)",
        g.num_actors(),
        g.num_channels(),
        blocks
    );

    // Group actors by their name pattern (req*, ca_in*, mem*, ca_out*,
    // cmp*) and derive Def. 3 indices automatically.
    let abs = auto_abstraction(&g)?;
    println!(
        "abstraction: {} groups, cycle length N = {}",
        abs.num_groups(),
        abs.cycle_length()
    );

    // The abstract graph is the five-actor model on the right of Fig. 5.
    let small = abstract_graph(&g, &abs)?;
    println!(
        "abstract model: {} actors, {} channels",
        small.num_actors(),
        small.num_channels()
    );
    println!("\n{}", dot::to_dot(&small));

    // Mechanically check the premises of Prop. 1 (Sec. 5) for this
    // instance: the unfolded abstract graph refines the original.
    match verify_abstraction(&g, &abs)? {
        Ok(()) => println!("Prop. 1 premises verified: the abstraction is conservative"),
        Err(v) => {
            eprintln!("conservativity violated: {v}");
            std::process::exit(1);
        }
    }

    // Compare exact throughput with the conservative estimate.
    let exact = throughput(&g)?
        .period()
        .expect("model has a critical cycle");
    let bound = conservative_period_bound(&g, &abs)?.expect("abstract model too");
    println!("exact iteration period        : {exact}");
    println!("conservative estimate (N * l'): {bound}");
    if exact == bound {
        println!("the abstraction is exact for this model, as the paper reports");
    }
    Ok(())
}

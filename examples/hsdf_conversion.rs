//! Compare the classical and the novel SDF → HSDF conversion on the
//! CD-to-DAT sample-rate converter, and export the results.
//!
//! Run with `cargo run --example hsdf_conversion [-- <output-dir>]`; when an
//! output directory is given, the graphs are written there as SDF3-style
//! XML and Graphviz DOT files.

use sdf_reductions::analysis::throughput::{hsdf_period, throughput};
use sdf_reductions::benchmarks::table1::samplerate;
use sdf_reductions::core::{novel, traditional};
use sdf_reductions::graph::dot;
use sdf_reductions::io::xml;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = samplerate();
    println!("{g}");

    let original_period = throughput(&g)?.period();
    println!("original iteration period: {original_period:?}\n");

    let trad = traditional::convert(&g)?;
    println!(
        "traditional conversion: {:5} actors, {:5} channels, {:5} tokens",
        trad.graph.num_actors(),
        trad.graph.num_channels(),
        trad.graph.total_initial_tokens()
    );
    let new = novel::convert(&g)?;
    println!(
        "novel conversion:       {:5} actors, {:5} channels, {:5} tokens",
        new.graph.num_actors(),
        new.graph.num_channels(),
        new.graph.total_initial_tokens()
    );
    println!(
        "reduction ratio: {:.1}x fewer actors",
        trad.graph.num_actors() as f64 / new.graph.num_actors() as f64
    );

    // Both are throughput-equivalent to the original.
    assert_eq!(hsdf_period(&trad.graph)?.finite(), original_period);
    assert_eq!(hsdf_period(&new.graph)?.finite(), original_period);
    println!("both conversions preserve the iteration period: {original_period:?}");

    if let Some(dir) = std::env::args().nth(1) {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("samplerate.xml"), xml::to_xml(&g))?;
        std::fs::write(dir.join("samplerate_novel.xml"), xml::to_xml(&new.graph))?;
        std::fs::write(dir.join("samplerate_novel.dot"), dot::to_dot(&new.graph))?;
        println!("wrote XML/DOT files to {}", dir.display());
    }
    Ok(())
}

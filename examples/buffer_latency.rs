//! Design-space exploration with the analysis stack: sweep the capacity of
//! a backpressure loop and observe the throughput/buffer/latency trade-off
//! — the style of exploration the paper's reductions make cheap.
//!
//! Run with `cargo run --example buffer_latency`.

use sdf_reductions::analysis::buffer::{
    minimize_capacities, self_timed_buffer_bounds, throughput_buffer_tradeoff,
};
use sdf_reductions::analysis::latency::iteration_makespan;
use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::graph::SdfGraph;

/// A three-stage pipeline where the first and last stage are coupled by a
/// credit loop of `credits` tokens (a bounded output FIFO).
fn pipeline(credits: u64) -> SdfGraph {
    let mut b = SdfGraph::builder(format!("pipeline(credits={credits})"));
    let src = b.actor("src", 2);
    let mid = b.actor("mid", 5);
    let snk = b.actor("snk", 3);
    b.channel(src, mid, 1, 1, 0).expect("valid");
    b.channel(mid, snk, 1, 1, 0).expect("valid");
    b.channel(snk, src, 1, 1, credits).expect("valid");
    // Stages process one item at a time.
    for a in [src, mid, snk] {
        b.channel(a, a, 1, 1, 1).expect("valid");
    }
    b.build().expect("valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("credits  period  throughput  makespan  buffer(src->mid)  buffer(mid->snk)");
    println!("--------------------------------------------------------------------------");
    for credits in 1..=6 {
        let g = pipeline(credits);
        let thr = throughput(&g)?;
        let period = thr.period().expect("credit loop bounds the pipeline");
        let makespan = iteration_makespan(&g)?;
        let buffers = self_timed_buffer_bounds(&g, 16)?;
        println!(
            "{credits:>7}  {:>6}  {:>10}  {makespan:>8}  {:>16}  {:>16}",
            period.to_string(),
            thr.iteration_throughput()
                .map_or("inf".to_string(), |t| t.to_string()),
            buffers[0],
            buffers[1],
        );
    }
    println!(
        "\nThe period saturates at the bottleneck stage (5) once enough credits\n\
         decouple the loop; beyond that, extra credits only add buffering."
    );

    // The throughput/buffer trade-off curve of the 3-credit instance, in the
    // style of the exact exploration the paper cites (Stuijk et al.).
    let g = pipeline(3);
    println!("\nthroughput/buffer trade-off (credits = 3):");
    println!("total capacity  period");
    for point in throughput_buffer_tradeoff(&g, 16)? {
        println!(
            "{:>14}  {}",
            point.total,
            point
                .period
                .map_or("deadlock".to_string(), |p| p.to_string())
        );
    }
    let minimal = minimize_capacities(&g, 16)?;
    println!("minimal throughput-preserving capacities: {minimal:?}");
    Ok(())
}

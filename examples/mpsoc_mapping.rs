//! End-to-end MPSoC flow, the paper's motivating use case: take an
//! application graph, map it onto a platform (shared processors, TDM
//! arbitration, a NoC connection), analyse the mapped model, and reduce it
//! with the paper's techniques.
//!
//! Run with `cargo run --example mpsoc_mapping`.

use sdf_reductions::analysis::bottleneck::bottleneck;
use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::core::recommend::{best_conversion, predict_sizes};
use sdf_reductions::graph::{ChannelId, SdfGraph};
use sdf_reductions::platform::noc::{insert_connection, ConnectionLatency};
use sdf_reductions::platform::{apply_mapping, apply_tdm, Mapping, TdmSlot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The application: a four-stage video pipeline with a frame buffer.
    let mut b = SdfGraph::builder("video");
    let capture = b.actor("capture", 3);
    let filter = b.actor("filter", 8);
    let encode = b.actor("encode", 11);
    let output = b.actor("output", 2);
    let noc_channel: ChannelId = b.channel(filter, encode, 1, 1, 0)?;
    b.channel(capture, filter, 1, 1, 0)?;
    b.channel(encode, output, 1, 1, 0)?;
    b.channel(output, capture, 1, 1, 3)?; // triple buffering
    let app = b.build()?;
    let ideal = throughput(&app)?
        .period()
        .expect("frame buffer bounds the rate");
    println!("application period (ideal platform): {ideal}");

    // Platform step 1: filter and encode sit on different tiles; their
    // channel crosses the NoC through communication assists.
    let g = insert_connection(&app, noc_channel, ConnectionLatency::symmetric(1, 4))?;

    // Platform step 2: capture and output share a control processor.
    let capture = g.actor_by_name("capture").expect("kept by transform");
    let output = g.actor_by_name("output").expect("kept by transform");
    let mut m = Mapping::new();
    m.processor([capture, output]);
    let g = apply_mapping(&g, &m)?;

    // Platform step 3: the filter shares a DSP under TDM (3 of 6 slots).
    let filter = g.actor_by_name("filter").expect("kept by transform");
    let g = apply_tdm(&g, &[(filter, TdmSlot::new(3, 6))])?;

    println!(
        "mapped model: {} actors, {} channels",
        g.num_actors(),
        g.num_channels()
    );
    let mapped = throughput(&g)?.period().expect("platform bounds the rate");
    println!("mapped period (conservative): {mapped}");
    if let Some(report) = bottleneck(&g)? {
        let names: Vec<&str> = report.actors.iter().map(|&a| g.actor(a).name()).collect();
        println!("bottleneck: {}", names.join(" -> "));
    }

    // Reduction: pick the smaller HSDF conversion, as the paper advises.
    let p = predict_sizes(&g)?;
    println!(
        "conversion prediction: traditional = {}, novel <= {}",
        p.traditional_actors, p.novel_actor_bound
    );
    let (choice, reduced) = best_conversion(&g)?;
    println!(
        "{choice:?} conversion chosen: {} actors, {} channels",
        reduced.num_actors(),
        reduced.num_channels()
    );
    Ok(())
}

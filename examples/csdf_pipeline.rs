//! Cyclo-static dataflow: analyse a phase-accurate pipeline that plain SDF
//! cannot express, then reduce it with the paper's compact HSDF conversion.
//!
//! Run with `cargo run --example csdf_pipeline`.

use sdf_reductions::analysis::throughput::hsdf_period;
use sdf_reductions::csdf::{self, CsdfGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deinterleaving receiver: the radio delivers a burst of 2 samples,
    // then idles a phase; the equalizer works sample by sample; the slicer
    // consumes one symbol per firing but only emits a decision every
    // second firing.
    let mut b = CsdfGraph::builder("receiver");
    let radio = b.actor("radio", [3, 1]);
    let eq = b.actor("eq", [2]);
    let slicer = b.actor("slicer", [1, 2]);
    b.channel(radio, eq, [2, 0], [1], 0)?;
    b.channel(eq, slicer, [1], [1, 1], 0)?;
    b.channel(slicer, radio, [0, 1], [1, 0], 2)?; // burst credits
    for (a, phases) in [(radio, 2), (eq, 1), (slicer, 2)] {
        // One-token self-loops serialize the phases of each component.
        let ones = vec![1u64; phases];
        b.channel(a, a, ones.clone(), ones, 1)?;
    }
    let g = b.build()?;
    println!("{g}");

    let rep = csdf::repetition_vector(&g)?;
    println!("phase firings per iteration: {}", rep.iteration_length(&g));

    let thr = csdf::throughput(&g)?;
    let period = thr.period.expect("credit loop bounds the receiver");
    println!("iteration period: {period}");
    println!(
        "radio firings per time unit: {}",
        thr.actor_throughput(radio, 2).expect("finite period")
    );

    // The paper's compact conversion applies unchanged: the max-plus
    // matrix of one phase-accurate iteration realises as a small HSDF.
    let hsdf = csdf::to_hsdf(&g)?;
    println!(
        "compact HSDF: {} actors, {} channels, {} tokens",
        hsdf.num_actors(),
        hsdf.num_channels(),
        hsdf.total_initial_tokens()
    );
    assert_eq!(hsdf_period(&hsdf)?.finite(), Some(period));
    println!("HSDF iteration period matches: {period}");
    Ok(())
}

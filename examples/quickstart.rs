//! Quickstart: build a small multirate SDF graph, analyse it, and convert
//! it to a compact HSDF graph.
//!
//! Run with `cargo run --example quickstart`.

use sdf_reductions::analysis::latency::iteration_makespan;
use sdf_reductions::analysis::throughput::throughput;
use sdf_reductions::core::{novel, traditional};
use sdf_reductions::graph::repetition::repetition_vector;
use sdf_reductions::graph::SdfGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An MP3-ish decoder: a frame parser feeding a block pipeline, with a
    // feedback channel modelling a 6-slot output buffer.
    let mut b = SdfGraph::builder("quickstart");
    let parse = b.actor("parse", 4);
    let decode = b.actor("decode", 3);
    let render = b.actor("render", 2);
    b.channel(parse, decode, 2, 1, 0)?; // one parse yields 2 blocks
    b.channel(decode, render, 1, 3, 0)?; // render drains 3 blocks at once
    b.channel(render, parse, 3, 2, 6)?; // 6-token backpressure loop

    let g = b.build()?;
    println!("{g}");

    // Consistency and the repetition vector.
    let gamma = repetition_vector(&g)?;
    println!("repetition vector:");
    for (a, count) in gamma.iter() {
        println!(
            "  {} fires {} time(s) per iteration",
            g.actor(a).name(),
            count
        );
    }

    // Exact throughput (spectral, via the max-plus matrix of one iteration).
    let thr = throughput(&g)?;
    match thr.period() {
        Some(period) => {
            println!("iteration period: {period}");
            for (a, _) in g.actors() {
                println!(
                    "  throughput({}) = {} firings per time unit",
                    g.actor(a).name(),
                    thr.actor_throughput(a).expect("finite period")
                );
            }
        }
        None => println!("throughput is unbounded (no recurrent dependency)"),
    }
    println!("first-iteration makespan: {}", iteration_makespan(&g)?);

    // The two SDF -> HSDF conversions of the paper.
    let trad = traditional::convert(&g)?;
    let new = novel::convert(&g)?;
    println!(
        "traditional conversion: {} actors, {} channels",
        trad.graph.num_actors(),
        trad.graph.num_channels()
    );
    println!(
        "novel conversion:       {} actors, {} channels, {} tokens (bound: {} actors)",
        new.graph.num_actors(),
        new.graph.num_channels(),
        new.graph.total_initial_tokens(),
        new.actor_bound()
    );
    println!(
        "\nmax-plus matrix of one iteration:\n{}",
        new.symbolic.matrix
    );
    Ok(())
}

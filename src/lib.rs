//! # sdf-reductions
//!
//! A Rust implementation of **"Reduction Techniques for Synchronous Dataflow
//! Graphs"** (M. Geilen, DAC 2009), together with the full SDF analysis stack
//! the paper builds on.
//!
//! This facade crate re-exports the workspace crates:
//!
//! - [`maxplus`] — exact max-plus algebra (values, vectors, matrices,
//!   eigenvalues, recurrences),
//! - [`graph`] — the timed SDF graph model: construction, consistency,
//!   repetition vectors, sequential schedules, self-timed execution,
//! - [`analysis`] — throughput (spectral and state-space), maximum cycle
//!   mean/ratio algorithms, latency, buffer occupancy, and the symbolic
//!   max-plus matrix extraction (paper, Alg. 1 lines 1–11),
//! - [`core`] — the paper's contributions: conservative **abstraction**
//!   (Sec. 4), **unfolding** (Def. 5), redundant-edge pruning, the
//!   **traditional** SDF→HSDF expansion and the **novel compact** SDF→HSDF
//!   conversion (Sec. 6, Fig. 4),
//! - [`benchmarks`] — reconstructions of the paper's benchmark graphs
//!   (Table 1) plus parametric regular graphs (Figs. 1 and 5) and random
//!   graph generators,
//! - [`io`] — reading/writing graphs in an SDF3-compatible XML subset and a
//!   compact text format,
//! - [`platform`] — MPSoC platform modelling: processor binding with static
//!   orders, TDM arbitration abstraction, NoC connection insertion,
//! - [`csdf`] — cyclo-static dataflow analysed through the same max-plus
//!   machinery, including the compact HSDF conversion.
//!
//! # Quickstart
//!
//! ```
//! use sdf_reductions::graph::SdfGraph;
//! use sdf_reductions::analysis::throughput;
//!
//! // Two actors exchanging tokens: a produces 2 per firing, b consumes 3.
//! let mut b = SdfGraph::builder("producer-consumer");
//! let a = b.actor("a", 2);
//! let c = b.actor("b", 3);
//! b.channel(a, c, 2, 3, 0)?;
//! b.channel(c, a, 3, 2, 6)?; // feedback with 6 initial tokens
//! let g = b.build()?;
//!
//! let thr = throughput(&g)?;
//! println!("iteration period: {:?}", thr.period());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use sdfr_analysis as analysis;
pub use sdfr_benchmarks as benchmarks;
pub use sdfr_core as core;
pub use sdfr_csdf as csdf;
pub use sdfr_graph as graph;
pub use sdfr_io as io;
pub use sdfr_maxplus as maxplus;
pub use sdfr_platform as platform;
